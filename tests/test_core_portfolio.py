"""Unit tests for the greedy "few fit most" portfolio core.

Curve semantics (clamping, targets, serde) are exercised on
hand-built curves; the greedy construction and the lattice-wide
:func:`~repro.core.portfolio.build_portfolios` run against the pinned
mini dataset, cross-checked against the Algorithm 1 strategies they
must agree with at K = 1.  The CLI is driven in-process.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import (
    Analysis,
    PORTFOLIO_LEVELS,
    PortfolioCurve,
    PortfolioSet,
    PortfolioStep,
    build_portfolios,
    build_strategies,
    greedy_portfolio,
    portfolio_coverage,
)
from repro.core.portfolio import main as portfolio_main
from repro.core.strategies import STRATEGY_DIMS
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def portfolios(mini_dataset) -> PortfolioSet:
    return build_portfolios(mini_dataset)


@pytest.fixture(scope="module")
def strategies(mini_dataset):
    return build_strategies(mini_dataset, Analysis(mini_dataset))


def _curve(*cov) -> PortfolioCurve:
    steps = []
    prev = 0.0
    for i, c in enumerate(cov):
        steps.append(PortfolioStep(config=f"c{i}", coverage=c, gain=c - prev))
        prev = c
    return PortfolioCurve(level="global", key=(), steps=steps, n_tests=4)


class TestCurveSemantics:
    def test_coverage_at_clamps_beyond_the_curve(self):
        curve = _curve(0.6, 0.9, 1.0)
        assert curve.coverage_at(1) == 0.6
        assert curve.coverage_at(3) == 1.0
        assert curve.coverage_at(50) == 1.0  # greedy stopped: oracle

    def test_coverage_at_rejects_nonpositive_k(self):
        curve = _curve(0.6)
        with pytest.raises(AnalysisError, match="must be positive"):
            curve.coverage_at(0)
        with pytest.raises(AnalysisError, match="must be positive"):
            curve.configs_for(-1)

    def test_empty_curve_is_vacuously_oracle(self):
        curve = PortfolioCurve(level="global", key=())
        assert curve.coverage_at(1) == 1.0
        assert curve.configs_for(3) == []
        assert curve.k_for(0.95) == 1

    def test_configs_for_truncates(self):
        curve = _curve(0.6, 0.9, 1.0)
        assert curve.configs_for(2) == ["c0", "c1"]
        assert curve.configs_for(10) == ["c0", "c1", "c2"]

    def test_k_for_is_the_smallest_sufficient_k(self):
        curve = _curve(0.6, 0.9, 1.0)
        assert curve.k_for(0.5) == 1
        assert curve.k_for(0.9) == 2
        assert curve.k_for(1.0) == 3

    def test_roundtrips_through_dict(self):
        curve = _curve(0.6, 0.9, 1.0)
        back = PortfolioCurve.from_dict("global", curve.to_dict())
        assert back.to_dict() == curve.to_dict()
        assert back.key == curve.key and back.n_tests == curve.n_tests

    def test_malformed_dict_rejected(self):
        with pytest.raises(AnalysisError, match="malformed portfolio curve"):
            PortfolioCurve.from_dict("global", {"key": []})
        with pytest.raises(AnalysisError, match="malformed portfolio curve"):
            PortfolioCurve.from_dict(
                "global",
                {"key": [], "n_tests": 1, "steps": [{"config": "x"}]},
            )


class TestBuildPortfolios:
    def test_every_lattice_partition_gets_a_curve(
        self, portfolios, mini_dataset
    ):
        assert set(portfolios.levels) == set(PORTFOLIO_LEVELS)
        n_chips = len(mini_dataset.chips)
        n_apps = len(mini_dataset.apps)
        n_inputs = len(mini_dataset.graphs)
        expected = {
            "global": 1,
            "chip": n_chips,
            "app": n_apps,
            "input": n_inputs,
            "chip+app": n_chips * n_apps,
            "chip+input": n_chips * n_inputs,
            "app+input": n_apps * n_inputs,
            "chip+app+input": n_chips * n_apps * n_inputs,
        }
        for level, cells in portfolios.levels.items():
            assert len(cells) == expected[level], level
        assert portfolios.n_curves == sum(expected.values())
        assert portfolios.coverage is not None

    def test_k1_is_the_algorithm1_strategy(self, portfolios, strategies):
        """The greedy is seeded with the paper's strategy, so a K = 1
        portfolio *is* Table V's recommendation for the partition."""
        for level, cells in portfolios.levels.items():
            for key, curve in cells.items():
                seed = strategies[level].assignment[key]
                assert curve.steps[0].config == seed.key(), (level, key)

    def test_curves_are_monotone_and_end_at_oracle(self, portfolios):
        for cells in portfolios.levels.values():
            for curve in cells.values():
                coverages = [s.coverage for s in curve.steps]
                assert all(
                    a <= b for a, b in zip(coverages, coverages[1:])
                )
                assert coverages[-1] == 1.0
                assert all(0.0 < c <= 1.0 for c in coverages)

    def test_gains_are_the_coverage_deltas(self, portfolios):
        for cells in portfolios.levels.values():
            for curve in cells.values():
                prev = 0.0
                for step in curve.steps:
                    assert step.gain == pytest.approx(step.coverage - prev)
                    prev = step.coverage

    def test_coverage_matches_independent_recomputation(
        self, portfolios, mini_dataset
    ):
        """Each step's coverage equals ``portfolio_coverage`` of its
        prefix, computed from the dataset rather than the curve."""
        analysis = Analysis(mini_dataset)
        curve = portfolios.levels["chip"][("MALI",)]
        tests = analysis.partitions(STRATEGY_DIMS["chip"])[("MALI",)]
        for k in range(1, len(curve.steps) + 1):
            assert curve.coverage_at(k) == pytest.approx(
                portfolio_coverage(
                    mini_dataset, tests, curve.configs_for(k)
                )
            )

    def test_k_max_caps_every_curve(self, mini_dataset):
        capped = build_portfolios(
            mini_dataset, k_max=2, levels=["global", "chip"]
        )
        assert set(capped.levels) == {"global", "chip"}
        for cells in capped.levels.values():
            for curve in cells.values():
                assert len(curve.steps) <= 2

    def test_unknown_level_rejected(self, mini_dataset):
        with pytest.raises(AnalysisError, match="unknown portfolio level"):
            build_portfolios(mini_dataset, levels=["global", "baseline"])

    def test_unseeded_greedy_still_reaches_oracle(self, mini_dataset):
        tests = mini_dataset.tests_where(chip="MALI", app="bfs-wl")
        curve = greedy_portfolio(
            mini_dataset, tests, level="chip+app", key=("MALI", "bfs-wl")
        )
        assert curve.steps
        assert curve.steps[-1].coverage == 1.0

    def test_deterministic_across_builds(self, portfolios, mini_dataset):
        again = build_portfolios(mini_dataset)
        assert again.to_dict() == portfolios.to_dict()


class TestPortfolioSetSerde:
    def test_roundtrips_through_dict(self, portfolios):
        back = PortfolioSet.from_dict(portfolios.to_dict())
        assert back.to_dict() == portfolios.to_dict()
        assert back.n_curves == portfolios.n_curves
        assert back.curve("chip", ("MALI",)) is not None
        assert back.curve("chip", ("nope",)) is None

    def test_unknown_level_rejected(self):
        with pytest.raises(AnalysisError, match="unknown portfolio level"):
            PortfolioSet.from_dict({"baseline": []})

    def test_non_mapping_rejected(self):
        with pytest.raises(AnalysisError, match="malformed portfolio"):
            PortfolioSet.from_dict(["not", "a", "mapping"])


class TestCLI:
    @pytest.fixture(scope="class")
    def dataset_path(self, goldens_dir) -> str:
        return os.path.join(goldens_dir, "mini-dataset.json.gz")

    def test_renders_the_curve_table(self, dataset_path, capsys):
        assert portfolio_main([dataset_path, "--k-max", "3"]) == 0
        out = capsys.readouterr().out
        assert "Few fit most" in out
        assert "K=1" in out
        assert "K@95%" in out

    def test_writes_curves_json(self, dataset_path, tmp_path, capsys):
        out_path = str(tmp_path / "curves.json")
        code = portfolio_main(
            [dataset_path, "--k-max", "2", "--output", out_path]
        )
        assert code == 0
        with open(out_path) as f:
            dumped = json.load(f)
        assert set(dumped) == set(PORTFOLIO_LEVELS)
        back = PortfolioSet.from_dict(dumped)
        assert all(
            len(c.steps) <= 2
            for cells in back.levels.values()
            for c in cells.values()
        )

    def test_rejects_bad_target(self, dataset_path, capsys):
        assert portfolio_main([dataset_path, "--target", "1.5"]) == 1
        assert "--target" in capsys.readouterr().err

    def test_rejects_bad_k_max(self, dataset_path, capsys):
        assert portfolio_main([dataset_path, "--k-max", "0"]) == 1
        assert "--k-max" in capsys.readouterr().err

    def test_rejects_missing_dataset(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert portfolio_main([missing]) == 1

    def test_writes_metrics_report(self, dataset_path, tmp_path, capsys):
        metrics = str(tmp_path / "report.json")
        code = portfolio_main(
            [dataset_path, "--k-max", "2", "--metrics", metrics]
        )
        assert code == 0
        from repro.obs import RunReport

        report = RunReport.load(metrics)
        spans = {s["name"] for s in report.to_dict()["spans"]}
        assert "portfolio.build" in spans
