"""Golden regression tests for the paper's headline experiments.

Each test renders an experiment on the committed miniature dataset
(``tests/goldens/mini-dataset.json.gz``) and compares the output
byte-for-byte against a committed golden file.  A separate test pins
the dataset itself: regenerating the miniature study must reproduce
the committed dataset exactly, so any drift in the study pipeline —
graph generation, the performance model, the noise model, the pricing
engines — fails loudly here before it silently shifts every table.

To bless intentional changes::

    PYTHONPATH=src python -m pytest tests/test_golden_experiments.py \
        --update-goldens

then commit the rewritten files under ``tests/goldens/``.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig1_heatmap, table2_envelope, table3_ranking
from repro.study.dataset import PerfDataset

GOLDEN_DATASET = "mini-dataset.json.gz"

EXPERIMENTS = {
    "table2_envelope.txt": table2_envelope.run,
    "table3_ranking.txt": table3_ranking.run,
    "fig1_heatmap.txt": fig1_heatmap.run,
}


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir, mini_dataset, update_goldens) -> PerfDataset:
    """The committed miniature dataset (rewritten under --update-goldens)."""
    path = os.path.join(goldens_dir, GOLDEN_DATASET)
    if update_goldens:
        os.makedirs(goldens_dir, exist_ok=True)
        mini_dataset.save(path)
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden dataset {path}; run with --update-goldens "
            f"to create it"
        )
    return PerfDataset.load(path)


def test_mini_dataset_matches_committed(golden_dataset, mini_dataset):
    """The study pipeline still reproduces the committed dataset.

    The miniature study is fully seeded, so regeneration must be exact;
    a mismatch means the pricing pipeline changed behaviour and every
    golden table needs re-blessing (or the change needs reverting).
    """
    assert mini_dataset == golden_dataset
    assert mini_dataset.n_measurements == golden_dataset.n_measurements


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_output_matches_golden(
    name, golden_dataset, goldens_dir, update_goldens
):
    rendered = EXPERIMENTS[name](golden_dataset)
    assert rendered.strip(), f"{name}: experiment rendered nothing"
    path = os.path.join(goldens_dir, name)
    if update_goldens:
        with open(path, "w", encoding="utf-8") as f:
            f.write(rendered + "\n")
    if not os.path.exists(path):
        pytest.fail(
            f"missing golden file {path}; run with --update-goldens to "
            f"create it"
        )
    with open(path, encoding="utf-8") as f:
        expected = f.read()
    assert rendered + "\n" == expected, (
        f"{name} drifted from its golden file; if the change is "
        f"intentional, re-bless with --update-goldens and commit"
    )
