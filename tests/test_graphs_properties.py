"""Tests for structural property analysis."""

import numpy as np
import pytest

from repro.graphs import (
    CSRGraph,
    analyze,
    bfs_levels,
    degree_cv,
    degree_gini,
    estimate_diameter,
)


class TestBFSLevels:
    def test_line(self, line_graph):
        assert bfs_levels(line_graph, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self, line_graph):
        levels = bfs_levels(line_graph, 2)
        assert levels.tolist() == [-1, -1, 0, 1, 2]

    def test_star(self, star_graph):
        levels = bfs_levels(star_graph, 0)
        assert levels[0] == 0
        assert all(levels[1:] == 1)

    def test_matches_reference_on_random(self, small_uniform):
        import collections

        levels = bfs_levels(small_uniform, 0)
        # Plain BFS reference.
        ref = {0: 0}
        queue = collections.deque([0])
        while queue:
            u = queue.popleft()
            for v in small_uniform.neighbors(u):
                if int(v) not in ref:
                    ref[int(v)] = ref[u] + 1
                    queue.append(int(v))
        for v in range(small_uniform.n_nodes):
            assert levels[v] == ref.get(v, -1)


class TestDiameter:
    def test_line_exact(self, line_graph):
        assert estimate_diameter(line_graph.symmetrized()) == 4

    def test_star_is_two(self, star_graph):
        assert estimate_diameter(star_graph.symmetrized()) == 2

    def test_single_node(self):
        g = CSRGraph.from_edges(1, [])
        assert estimate_diameter(g) == 0

    def test_grid_scales_with_side(self):
        from repro.graphs import road_network

        small = estimate_diameter(road_network(10, 10, seed=0, drop_fraction=0.0))
        big = estimate_diameter(road_network(30, 30, seed=0, drop_fraction=0.0))
        assert big > 2 * small


class TestDegreeStats:
    def test_cv_zero_for_regular(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        assert degree_cv(g) == 0.0

    def test_cv_positive_for_star(self, star_graph):
        assert degree_cv(star_graph) > 1.0

    def test_gini_zero_for_regular(self):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert degree_gini(g) == pytest.approx(0.0, abs=1e-12)

    def test_gini_high_for_star(self, star_graph):
        assert degree_gini(star_graph) > 0.8

    def test_empty_graph(self):
        g = CSRGraph.from_edges(3, [])
        assert degree_cv(g) == 0.0
        assert degree_gini(g) == 0.0


class TestAnalyze:
    def test_fields_consistent(self, small_rmat):
        p = analyze(small_rmat)
        assert p.n_nodes == small_rmat.n_nodes
        assert p.n_edges == small_rmat.n_edges
        assert p.max_degree == int(small_rmat.out_degrees().max())
        assert p.avg_degree == pytest.approx(p.n_edges / p.n_nodes)

    def test_classify_exhaustive(self, small_road, small_rmat):
        assert analyze(small_rmat).classify() == "social"
        # A 12x12 road grid is too small to be "high diameter" but must
        # never be classified social.
        assert analyze(small_road).classify() in ("road", "random")
