"""Tests for the naive analyses (Section II-C) on designed data."""

import pytest

from repro.compiler import BASELINE, OptConfig
from repro.core import (
    do_no_harm,
    fewest_slowdowns,
    max_geomean,
    per_chip_breakdown,
    rank_configurations,
)

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    return build_synthetic_dataset()


class TestRanking:
    def test_covers_all_nonbaseline_configs(self, designed):
        rankings = rank_configurations(designed)
        assert len(rankings) == 95

    def test_sorted_by_slowdowns(self, designed):
        rankings = rank_configurations(designed)
        slow = [r.slowdowns for r in rankings]
        assert slow == sorted(slow)

    def test_harmful_configs_rank_last(self, designed):
        rankings = rank_configurations(designed)
        # wg is a universal slowdown; configs enabling it without any
        # compensating speedup must sit at the bottom.
        assert rankings[-1].config.has("wg")
        assert rankings[-1].slowdowns > 0
        assert rankings[-1].geomean_speedup < 1.0

    def test_pure_speedup_config_at_top(self, designed):
        rankings = rank_configurations(designed)
        assert rankings[0].slowdowns == 0
        assert rankings[0].config.has("sg")
        assert rankings[0].geomean_speedup > 1.0

    def test_counts_consistent(self, designed):
        for r in rank_configurations(designed)[:10]:
            assert r.slowdowns + r.speedups <= len(designed.tests)
            assert r.max_speedup >= 1.0
            assert r.max_slowdown >= 1.0


class TestPicks:
    def test_do_no_harm_finds_harmless_config(self, designed):
        pick = do_no_harm(designed)
        # sg-only style configs never harm in the designed data.
        assert pick.has("sg") or pick.is_baseline
        rankings = {r.config.key(): r for r in rank_configurations(designed)}
        if not pick.is_baseline:
            assert rankings[pick.key()].slowdowns == 0

    def test_do_no_harm_degenerates_when_everything_harms(self):
        # Every optimisation hurts: the paper's degenerate case.
        ds = build_synthetic_dataset(effects=lambda opt, test: 1.5)
        assert do_no_harm(ds) == BASELINE

    def test_fewest_slowdowns_is_rank_zero(self, designed):
        assert (
            fewest_slowdowns(designed).config
            == rank_configurations(designed)[0].config
        )

    def test_max_geomean_beats_others_on_geomean(self, designed):
        best = max_geomean(designed)
        assert all(
            best.geomean_speedup >= r.geomean_speedup - 1e-12
            for r in rank_configurations(designed)
        )

    def test_max_geomean_is_biased_towards_sensitive_chip(self):
        """The Table IV failure mode: an opt that hugely helps one chip
        but mildly hurts the other wins the geomean yet harms C2."""

        def effects(opt, test):
            if opt == "fg8":
                return 0.2 if test.chip == "C1" else 1.15
            return 1.0

        ds = build_synthetic_dataset(effects=effects)
        pick = max_geomean(ds)
        assert pick.config.has("fg8")
        breakdown = per_chip_breakdown(ds, pick.config)
        assert breakdown["C2"].slowdowns > 0
        assert breakdown["C1"].slowdowns == 0

    def test_per_chip_breakdown_covers_all_chips(self, designed):
        breakdown = per_chip_breakdown(designed, OptConfig(sg=True))
        assert set(breakdown) == {"C1", "C2"}
        for chip, record in breakdown.items():
            assert record.slowdowns == 0
            assert record.speedups == len(designed.tests_where(chip=chip))
