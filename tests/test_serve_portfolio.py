"""Differential tests for ``GET /v1/portfolio``.

The served bytes must be *identical* along three routes: the
pre-serialized table compiled into the artifact, the on-demand
:func:`~repro.serve.index.render_portfolio_answer` encoding over a
freshly built index, and what the HTTP server actually puts on the
wire — for every (chip, app, input, k) lattice point.  The
``portfolio-responses.json`` golden pins the encoding itself across
sessions (refresh with ``pytest --update-goldens``).
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.errors import StrategyIndexError
from repro.obs import Recorder
from repro.serve import (
    StrategyIndex,
    StrategyServer,
    build_index,
    render_portfolio_answer,
)
from repro.study.dataset import PerfDataset

GOLDEN_DATASET = "mini-dataset.json.gz"
GOLDEN_RESPONSES = "portfolio-responses.json"

#: Portfolio sizes the differential sweep queries (None = default
#: target-driven sizing, the pre-serialized hot path).
K_SWEEP = (None, 1, 2, 3)


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def index(golden_dataset) -> StrategyIndex:
    return build_index(golden_dataset, portfolios=True)


def _coordinates(dataset):
    for chip in [None] + dataset.chips:
        for app in [None] + dataset.apps:
            for inp in [None] + dataset.graphs:
                yield chip, app, inp


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def http_get(port: int, target: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body


def _query(chip, app, inp, k=None, target=None) -> str:
    parts = [
        f"{name}={value}"
        for name, value in (
            ("chip", chip),
            ("app", app),
            ("input", inp),
            ("k", k),
            ("target", target),
        )
        if value is not None
    ]
    return "/v1/portfolio" + ("?" + "&".join(parts) if parts else "")


class TestPrecompiledTable:
    def test_covers_the_full_coordinate_lattice(self, index, golden_dataset):
        n_chips = len(golden_dataset.chips) + 1  # +1: dimension unnamed
        n_apps = len(golden_dataset.apps) + 1
        n_inputs = len(golden_dataset.graphs) + 1
        assert index.n_portfolio_answers == n_chips * n_apps * n_inputs
        for coord in _coordinates(golden_dataset):
            assert index.portfolio_answer(coord) is not None

    def test_bodies_match_render_portfolio_answer(self, index):
        for (chip, app, inp), (body, degraded) in sorted(
            index.portfolio_answers.items(), key=lambda kv: repr(kv[0])
        ):
            rendered, rendered_degraded = render_portfolio_answer(
                index, chip=chip, app=app, input=inp
            )
            assert body == rendered
            assert degraded == rendered_degraded

    def test_describe_mentions_the_curves(self, index):
        assert "portfolio curves" in index.describe()


class TestServedBytesDifferential:
    def test_http_equals_offline_equals_golden(
        self, index, golden_dataset, goldens_dir, update_goldens
    ):
        """One server, every lattice point, every K in the sweep: the
        wire bytes must equal the offline encoding, and (unless
        refreshing) the committed golden."""
        golden_path = os.path.join(goldens_dir, GOLDEN_RESPONSES)

        async def sweep():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            out = {}
            try:
                for chip, app, inp in _coordinates(golden_dataset):
                    for k in K_SWEEP:
                        status, body = await http_get(
                            server.port, _query(chip, app, inp, k=k)
                        )
                        assert status == 200, (chip, app, inp, k)
                        out[json.dumps([chip, app, inp, k])] = body
            finally:
                await server.stop()
            return out

        served = run(sweep())
        for key_str, body in served.items():
            chip, app, inp, k = json.loads(key_str)
            offline, _ = render_portfolio_answer(
                index, chip=chip, app=app, input=inp, k=k
            )
            assert body == offline, key_str

        if update_goldens:
            with open(golden_path, "w") as f:
                json.dump(
                    {k: v.decode("utf-8") for k, v in sorted(served.items())},
                    f,
                    indent=1,
                    sort_keys=True,
                )
            pytest.skip("golden refreshed")
        with open(golden_path) as f:
            golden = json.load(f)
        assert set(golden) == set(served)
        for key_str, body in served.items():
            assert body.decode("utf-8") == golden[key_str], key_str

    def test_payload_shape(self, index):
        body, degraded = render_portfolio_answer(
            index, chip="MALI", app="bfs-wl", input="tiny-road"
        )
        payload = json.loads(body)
        assert not degraded and not payload["degraded"]
        assert payload["requested_level"] == "chip+app+input"
        assert payload["served_level"] == "chip+app+input"
        assert payload["k"] == len(payload["configs"])
        assert payload["target"] == 0.95
        assert payload["meets_target"] is True
        assert payload["coverage"] >= 0.95
        # Curve provenance: cumulative coverage with marginal gains.
        assert payload["curve"][0]["config"] == payload["configs"][0]
        assert payload["curve"][-1]["coverage"] == 1.0
        assert payload["query"] == {
            "chip": "MALI",
            "app": "bfs-wl",
            "input": "tiny-road",
            "k": None,
            "target": None,
        }

    def test_unknown_coordinate_falls_back_marked_degraded(self, index):
        body, degraded = render_portfolio_answer(
            index, chip="MALI", app="mis-wl", input=None
        )
        payload = json.loads(body)
        assert degraded and payload["degraded"]
        assert payload["requested_level"] == "chip+app"
        assert payload["served_level"] == "chip"
        assert "fell back" in payload["note"]


BAD_QUERIES = [
    ("?k=0", "'k' must be positive"),
    ("?k=-3", "'k' must be positive"),
    ("?k=two", "'k' must be a positive integer"),
    ("?target=0", "'target' must be in (0, 1]"),
    ("?target=1.5", "'target' must be in (0, 1]"),
    ("?target=nan", "'target' must be in (0, 1]"),
    ("?target=soon", "'target' must be a fraction"),
    ("?flavour=mild", "unknown query parameter"),
    ("?chip=", "empty value"),
]


class TestEndpointValidation:
    def test_bad_parameters_are_400(self, index):
        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                return [
                    await http_get(server.port, "/v1/portfolio" + query)
                    for query, _ in BAD_QUERIES
                ]
            finally:
                await server.stop()

        for (query, fragment), (status, body) in zip(BAD_QUERIES, run(go())):
            assert status == 400, query
            assert fragment in json.loads(body)["error"], query

    def test_post_is_405_and_healthz_reports_curves(self, index):
        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(
                    b"POST /v1/portfolio HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 0\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                health = await http_get(server.port, "/healthz")
            finally:
                await server.stop()
            return int(raw.split(None, 2)[1]), health

        post_status, (h_status, h_body) = run(go())
        assert post_status == 405
        assert h_status == 200
        assert (
            json.loads(h_body)["portfolio_curves"]
            == index.portfolios.n_curves
        )


class TestCountersReconcile:
    def test_portfolio_counters_in_metrics(self, index):
        """A known request sequence leaves exactly the expected trail:
        precompiled hits, cache misses then hits, one fallback — and
        the response classes sum back to the request count."""

        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                # 2x default params: precompiled table, no cache.
                for _ in range(2):
                    await http_get(
                        server.port, _query("MALI", "bfs-wl", "tiny-road")
                    )
                # 2x explicit k: one miss, one hit.
                for _ in range(2):
                    await http_get(
                        server.port,
                        _query("MALI", "bfs-wl", "tiny-road", k=2),
                    )
                # Unknown app: degraded, precompiled? No — unknown
                # coordinates are outside the table: cache miss.
                await http_get(server.port, _query("MALI", "mis-wl", None))
                # One bad request.
                await http_get(server.port, "/v1/portfolio?k=0")
                _, metrics_body = await http_get(server.port, "/metrics")
            finally:
                await server.stop()
            return json.loads(metrics_body)

        metrics = run(go())
        counters = metrics["counters"]
        assert counters["serve.requests.portfolio"] == 6
        assert counters["serve.portfolio.precompiled"] == 2
        assert counters["serve.portfolio.cache.misses"] == 2
        assert counters["serve.portfolio.cache.hits"] == 1
        assert counters["serve.fallbacks"] == 1
        assert counters["serve.responses.4xx"] == 1
        # Reconciliation: every request is counted exactly once by
        # endpoint and exactly once by response class (the /metrics
        # scrape itself responds after the snapshot).
        assert counters["serve.requests"] == 7
        assert (
            counters["serve.responses.2xx"]
            + counters["serve.responses.4xx"]
            == counters["serve.requests.portfolio"]
        )


class TestArtifactRoundtrip:
    def test_portfolios_survive_save_load_byte_identical(
        self, index, tmp_path
    ):
        path = str(tmp_path / "index.json")
        index.save(path)
        loaded = StrategyIndex.load(path)
        assert loaded.portfolios is not None
        assert loaded.portfolios.to_dict() == index.portfolios.to_dict()
        assert loaded.portfolio_answers == index.portfolio_answers
        resaved = str(tmp_path / "again.json")
        loaded.save(resaved)
        with open(path, "rb") as f1, open(resaved, "rb") as f2:
            assert f1.read() == f2.read()

    def test_tampered_portfolio_fails_the_checksum(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        with open(path) as f:
            payload = json.load(f)
        level = payload["index"]["portfolios"]["levels"]["global"]
        level[0]["steps"][0]["config"] = "evil"
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(StrategyIndexError, match="checksum mismatch"):
            StrategyIndex.load(path)

    def test_malformed_portfolio_section_rejected(self, index):
        data = index.to_dict()
        data["portfolios"] = {"levels": {"no-such-level": []}}
        with pytest.raises(StrategyIndexError, match="no-such-level"):
            StrategyIndex.from_dict(data)
        data["portfolios"] = ["not", "a", "mapping"]
        with pytest.raises(StrategyIndexError, match="malformed"):
            StrategyIndex.from_dict(data)


class TestWithoutPortfolios:
    def test_lookup_raises_with_rebuild_hint(self, golden_dataset):
        plain = build_index(golden_dataset)
        assert plain.portfolios is None
        assert plain.n_portfolio_answers == 0
        with pytest.raises(StrategyIndexError, match="--portfolios"):
            plain.lookup_portfolio()
        with pytest.raises(StrategyIndexError, match="--portfolios"):
            plain.compile_portfolio_answers()

    def test_endpoint_is_501_with_rebuild_hint(self, golden_dataset):
        plain = build_index(golden_dataset)

        async def go():
            server = StrategyServer(plain, recorder=Recorder())
            await server.start()
            try:
                status, body = await http_get(
                    server.port, _query("MALI", "bfs-wl", "tiny-road")
                )
                health = await http_get(server.port, "/healthz")
            finally:
                await server.stop()
            return status, body, health

        status, body, (h_status, h_body) = run(go())
        assert status == 501
        assert "repro index --portfolios" in json.loads(body)["error"]
        # The pre-portfolio health payload is unchanged.
        assert h_status == 200
        assert "portfolio_curves" not in json.loads(h_body)
