"""Property-based hardening of the greedy portfolio construction.

Hypothesis generates small *random studies* — random grid shapes,
random per-cell timings, random holes — and checks the invariants the
"few fit most" analysis rests on:

* the K-vs-coverage curve is monotone non-decreasing in K (the
  uncovered-test penalty makes adding a configuration never harmful);
* a K = 1 portfolio *is* the Algorithm 1 strategy: the greedy is
  seeded with it, and its coverage matches an independent
  geomean-of-ratios recomputation (``statistics.median`` + ``math``
  instead of the production numpy path);
* K = #configs reaches 100 % of oracle, exactly (each covered test's
  ratio is float-exactly 1.0, so the geomean is too);
* the greedy output is deterministic under dict-order shuffling of the
  dataset's insertion order (all internal orderings are canonical).

Integer-valued timings keep medians and ratios exact across orderings.
"""

from __future__ import annotations

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import enumerate_configs
from repro.core import (
    Analysis,
    build_portfolios,
    build_strategies,
    greedy_portfolio,
    portfolio_coverage,
)
from repro.study.dataset import PerfDataset, TestCase

CHIPS = ("chipA", "chipB")
APPS = ("appX", "appY")
GRAPHS = ("g1", "g2")
CONFIGS = enumerate_configs()[:8]  # baseline + 7 single/double-opt configs


@st.composite
def studies(draw) -> PerfDataset:
    """A random small study: grid shape, timings and holes all drawn.

    The baseline configuration is always measured (so every test stays
    populated); every other cell is independently droppable, which
    exercises the uncovered-test penalty path.
    """
    n_chips = draw(st.integers(1, 2))
    n_apps = draw(st.integers(1, 2))
    n_graphs = draw(st.integers(1, 2))
    n_configs = draw(st.integers(2, len(CONFIGS)))
    ds = PerfDataset()
    for chip in CHIPS[:n_chips]:
        for app in APPS[:n_apps]:
            for graph in GRAPHS[:n_graphs]:
                test = TestCase(app=app, graph=graph, chip=chip)
                for config in CONFIGS[:n_configs]:
                    if not config.is_baseline and draw(st.booleans()):
                        continue  # a hole in the grid
                    ms = draw(st.integers(1, 40))
                    ds.add(test, config, [float(ms)] * 3)
    return ds


def _reference_coverage(ds: PerfDataset, tests, config_key: str) -> float:
    """Independent K = 1 coverage: stdlib median, log-sum geomean."""
    logs = []
    for test in tests:
        medians = {}
        for config in ds.configs:
            times = ds.times_or_none(test, config)
            if times is not None:
                medians[config.key()] = statistics.median(times)
        if not medians:
            continue
        oracle = min(medians.values())
        deployed = medians.get(config_key, max(medians.values()))
        logs.append(math.log(oracle / deployed))
    return math.exp(sum(logs) / len(logs)) if logs else 1.0


@settings(max_examples=20, deadline=None)
@given(studies())
def test_curves_monotone_non_decreasing_in_k(ds):
    portfolios = build_portfolios(ds)
    for cells in portfolios.levels.values():
        for curve in cells.values():
            for a, b in zip(curve.steps, curve.steps[1:]):
                assert a.coverage <= b.coverage
            # coverage_at inherits the monotonicity, clamping included.
            upper = len(curve.steps) + 2
            at = [curve.coverage_at(k) for k in range(1, upper + 1)]
            assert at == sorted(at)


@settings(max_examples=20, deadline=None)
@given(studies())
def test_k1_equals_the_algorithm1_strategy_coverage(ds):
    analysis = Analysis(ds)
    strategies = build_strategies(ds, analysis)
    portfolios = build_portfolios(
        ds, analysis=analysis, strategies=strategies
    )
    from repro.core.strategies import STRATEGY_DIMS

    for level, cells in portfolios.levels.items():
        partitions = analysis.partitions(STRATEGY_DIMS[level])
        for key, curve in cells.items():
            if not curve.steps:
                continue
            seed = strategies[level].assignment[key]
            assert curve.steps[0].config == seed.key()
            assert curve.coverage_at(1) == pytest.approx(
                _reference_coverage(ds, partitions[key], seed.key()),
                rel=1e-9,
            )


@settings(max_examples=20, deadline=None)
@given(studies())
def test_full_portfolio_reaches_the_oracle_exactly(ds):
    portfolios = build_portfolios(ds)
    n_configs = len(ds.configs)
    for cells in portfolios.levels.values():
        for curve in cells.values():
            assert curve.coverage_at(max(1, n_configs)) == 1.0
            if curve.steps:
                assert curve.steps[-1].coverage == 1.0


@settings(max_examples=20, deadline=None)
@given(studies(), st.randoms(use_true_random=False))
def test_greedy_deterministic_under_insertion_order_shuffle(ds, rnd):
    """Re-inserting the measurements in a shuffled order must not move
    a single step: ties break on sorted keys, not dict order."""
    cells = list(ds.iter_measurements())
    rnd.shuffle(cells)
    shuffled = PerfDataset()
    for test, config, times in cells:
        shuffled.add(test, config, times)
    baseline = greedy_portfolio(ds, ds.tests, level="global", key=())
    again = greedy_portfolio(
        shuffled, shuffled.tests, level="global", key=()
    )
    assert again.to_dict() == baseline.to_dict()


@settings(max_examples=10, deadline=None)
@given(studies(), st.randoms(use_true_random=False))
def test_build_portfolios_deterministic_under_shuffle(ds, rnd):
    """The full lattice build — Algorithm 1 seeding included — is
    insertion-order independent too."""
    cells = list(ds.iter_measurements())
    rnd.shuffle(cells)
    shuffled = PerfDataset()
    for test, config, times in cells:
        shuffled.add(test, config, times)
    assert (
        build_portfolios(shuffled).to_dict()
        == build_portfolios(ds).to_dict()
    )


@settings(max_examples=20, deadline=None)
@given(studies(), st.integers(1, 4))
def test_coverage_of_any_prefix_matches_public_recomputation(ds, k):
    curve = greedy_portfolio(ds, ds.tests, level="global", key=())
    if not curve.steps:
        return
    k = min(k, len(curve.steps))
    assert curve.coverage_at(k) == pytest.approx(
        portfolio_coverage(ds, ds.tests, curve.configs_for(k))
    )
