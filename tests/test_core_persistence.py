"""Tests for strategy persistence (the shippable policy artifact)."""

import pytest

from repro.compiler import BASELINE
from repro.core import (
    Analysis,
    Strategy,
    build_strategies,
    load_strategies,
    save_strategies,
)

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, build_strategies(ds, Analysis(ds))


class TestStrategyRoundtrip:
    def test_single_strategy_dict_roundtrip(self, designed):
        _, strategies = designed
        chip = strategies["chip"]
        rebuilt = Strategy.from_dict(chip.to_dict())
        assert rebuilt.name == chip.name
        assert rebuilt.dims == chip.dims
        assert rebuilt.assignment == chip.assignment

    def test_file_roundtrip_preserves_all_strategies(self, designed, tmp_path):
        ds, strategies = designed
        path = str(tmp_path / "policy.json")
        save_strategies(strategies, path)
        loaded = load_strategies(path)
        assert set(loaded) == set(strategies)
        for name in strategies:
            assert loaded[name].assignment == strategies[name].assignment

    def test_loaded_strategy_deploys_identically(self, designed, tmp_path):
        ds, strategies = designed
        path = str(tmp_path / "policy.json")
        save_strategies(strategies, path)
        loaded = load_strategies(path)
        for test in ds.tests:
            for name in ("global", "chip", "oracle"):
                assert loaded[name].config_for(test) == strategies[
                    name
                ].config_for(test)

    def test_baseline_config_survives(self, designed, tmp_path):
        _, strategies = designed
        path = str(tmp_path / "policy.json")
        save_strategies(strategies, path)
        loaded = load_strategies(path)
        assert loaded["baseline"].assignment[()] == BASELINE
