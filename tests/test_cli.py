"""Tests for the command-line entry points."""

import json

import pytest

from repro.__main__ import main
from repro.core.reporting import render_csv


class TestDispatch:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "doctor" in out

    def test_no_args_shows_usage(self, capsys):
        assert main([]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_help_lists_serving_subcommands(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "index" in out
        assert "serve" in out

    def test_index_compiles_artifact(self, tmp_path, goldens_dir, capsys):
        import os

        dataset = os.path.join(goldens_dir, "mini-dataset.json.gz")
        out = str(tmp_path / "index.json")
        metrics = str(tmp_path / "metrics.json")
        assert main(["index", dataset, out, "--metrics", metrics]) == 0
        assert "wrote" in capsys.readouterr().out
        from repro.serve import StrategyIndex

        assert StrategyIndex.load(out).n_entries == 49
        with open(metrics) as f:
            assert json.load(f)["report"]["counters"]["index.entries"] == 49

    def test_index_missing_dataset(self, tmp_path, capsys):
        code = main(
            ["index", str(tmp_path / "nope.json"), str(tmp_path / "out.json")]
        )
        assert code == 1
        assert "[index]" in capsys.readouterr().err

    def test_serve_missing_index(self, tmp_path, capsys):
        assert main(["serve", str(tmp_path / "nope.json")]) == 1
        assert "[serve]" in capsys.readouterr().err

    def test_report_rejects_unknown_experiment(self, capsys):
        assert main(["report", "table99"]) == 2

    def test_report_definitional_experiment(self, capsys):
        assert main(["report", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Quadro M4000" in out


class TestProfileChecksums:
    def _report_file(self, tmp_path):
        from repro.obs.report import RunReport

        path = str(tmp_path / "run-report.json")
        RunReport(counters={"study.shards.priced": 4}).save(path)
        return path

    def test_profile_renders_healthy_report(self, tmp_path, capsys):
        assert main(["profile", self._report_file(tmp_path)]) == 0
        capsys.readouterr()

    def test_profile_rejects_checksum_mismatch(self, tmp_path, capsys):
        path = self._report_file(tmp_path)
        with open(path) as f:
            payload = json.load(f)
        payload["report"]["counters"]["study.shards.priced"] = 999
        with open(path, "w") as f:
            json.dump(payload, f)
        assert main(["profile", path]) == 1
        assert "checksum mismatch" in capsys.readouterr().err

    def test_profile_rejects_truncated_report(self, tmp_path, capsys):
        path = self._report_file(tmp_path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text[: len(text) // 2])
        assert main(["profile", path]) == 1
        assert "truncated or invalid" in capsys.readouterr().err


class TestRenderCsv:
    def test_basic(self):
        csv = render_csv(["a", "b"], [[1, 2.5], ["x", "y"]])
        assert csv.splitlines() == ["a,b", "1,2.50", "x,y"]

    def test_quoting(self):
        csv = render_csv(["a"], [['he said "hi", twice']])
        assert csv.splitlines()[1] == '"he said ""hi"", twice"'

    def test_empty_rows(self):
        assert render_csv(["only", "headers"], []) == "only,headers"
