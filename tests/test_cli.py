"""Tests for the command-line entry points."""

import pytest

from repro.__main__ import main
from repro.core.reporting import render_csv


class TestDispatch:
    def test_help(self, capsys):
        assert main(["--help"]) == 0
        assert "commands:" in capsys.readouterr().out

    def test_no_args_shows_usage(self, capsys):
        assert main([]) == 0
        assert "usage:" in capsys.readouterr().out

    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_report_rejects_unknown_experiment(self, capsys):
        assert main(["report", "table99"]) == 2

    def test_report_definitional_experiment(self, capsys):
        assert main(["report", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Quadro M4000" in out


class TestRenderCsv:
    def test_basic(self):
        csv = render_csv(["a", "b"], [[1, 2.5], ["x", "y"]])
        assert csv.splitlines() == ["a,b", "1,2.50", "x,y"]

    def test_quoting(self):
        csv = render_csv(["a"], [['he said "hi", twice']])
        assert csv.splitlines()[1] == '"he said ""hi"", twice"'

    def test_empty_rows(self):
        assert render_csv(["only", "headers"], []) == "only,headers"
