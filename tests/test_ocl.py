"""Tests for the OpenCL machine-model abstractions."""

import pytest

from repro.errors import DSLError, ForwardProgressError
from repro.ocl import (
    BarrierScope,
    CUResources,
    LaunchGeometry,
    discover_occupancy,
    occupant_workgroups,
    validate_global_barrier,
)


class TestLaunchGeometry:
    def test_basic_decomposition(self):
        geo = LaunchGeometry(n_workgroups=4, workgroup_size=128, subgroup_size=32)
        assert geo.global_size == 512
        assert geo.subgroups_per_workgroup == 4
        assert geo.n_subgroups == 16

    def test_thread_mapping(self):
        geo = LaunchGeometry(n_workgroups=2, workgroup_size=64, subgroup_size=16)
        assert geo.workgroup_of(70) == 1
        assert geo.local_id_of(70) == 6
        assert geo.subgroup_of(70) == 4
        assert geo.subgroup_lane_of(70) == 6

    def test_partial_subgroup(self):
        geo = LaunchGeometry(n_workgroups=1, workgroup_size=100, subgroup_size=32)
        assert geo.subgroups_per_workgroup == 4

    def test_subgroup_never_spans_workgroups(self):
        geo = LaunchGeometry(n_workgroups=3, workgroup_size=48, subgroup_size=32)
        for tid in range(geo.global_size):
            wg = geo.workgroup_of(tid)
            sg = geo.subgroup_of(tid)
            assert sg // geo.subgroups_per_workgroup == wg

    def test_rejects_bad_geometry(self):
        with pytest.raises(DSLError):
            LaunchGeometry(0, 128, 32)
        with pytest.raises(DSLError):
            LaunchGeometry(1, 0, 32)
        with pytest.raises(DSLError):
            LaunchGeometry(1, 128, 0)

    def test_rejects_out_of_range_thread(self):
        geo = LaunchGeometry(1, 32, 8)
        with pytest.raises(DSLError):
            geo.workgroup_of(32)


class TestOccupancy:
    RES = CUResources(max_workgroups=16, max_threads=1024, local_mem_bytes=32768)

    def test_limited_by_slots(self):
        assert occupant_workgroups(self.RES, workgroup_size=32) == 16

    def test_limited_by_threads(self):
        assert occupant_workgroups(self.RES, workgroup_size=256) == 4

    def test_limited_by_local_memory(self):
        assert occupant_workgroups(self.RES, 64, local_mem_per_wg=8192) == 4

    def test_zero_when_kernel_cannot_fit(self):
        assert occupant_workgroups(self.RES, 64, local_mem_per_wg=65536) == 0

    def test_device_wide(self):
        assert discover_occupancy(self.RES, n_cus=4, workgroup_size=256) == 16

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            occupant_workgroups(self.RES, 0)
        with pytest.raises(ValueError):
            occupant_workgroups(self.RES, 64, local_mem_per_wg=-1)
        with pytest.raises(ValueError):
            discover_occupancy(self.RES, 0, 64)
        with pytest.raises(ValueError):
            CUResources(max_workgroups=0, max_threads=1, local_mem_bytes=0)


class TestGlobalBarrierSafety:
    def test_safe_launch(self):
        validate_global_barrier(8, 8)
        validate_global_barrier(4, 8)

    def test_oversubscribed_launch_hangs(self):
        with pytest.raises(ForwardProgressError):
            validate_global_barrier(9, 8)

    def test_unschedulable_kernel(self):
        with pytest.raises(ForwardProgressError):
            validate_global_barrier(1, 0)


class TestBarrierScope:
    def test_portability_flags(self):
        assert BarrierScope.SUBGROUP.is_portable
        assert BarrierScope.WORKGROUP.is_portable
        assert not BarrierScope.GLOBAL.is_portable
