"""Tests for the chip models and the study chip database."""

import pytest

from repro.chips import CHIP_NAMES, CHIPS, all_chips, chips_by_vendor, get_chip
from repro.errors import ChipError
from repro.ocl import CUResources


class TestDatabase:
    def test_six_chips_four_vendors(self):
        chips = all_chips()
        assert len(chips) == 6
        assert {c.vendor for c in chips} == {"Nvidia", "Intel", "AMD", "ARM"}

    def test_table1_identities(self):
        assert get_chip("M4000").n_cus == 13
        assert get_chip("GTX1080").n_cus == 20
        assert get_chip("R9").sg_size == 64
        assert get_chip("MALI").sg_size == 1
        assert get_chip("M4000").sg_size == 32

    def test_lookup_by_short_name(self):
        for name in CHIP_NAMES:
            assert get_chip(name).short_name == name

    def test_unknown_chip(self):
        with pytest.raises(ChipError):
            get_chip("V100")

    def test_by_vendor(self):
        assert len(chips_by_vendor("nvidia")) == 2
        assert len(chips_by_vendor("Intel")) == 2
        assert len(chips_by_vendor("ARM")) == 1
        with pytest.raises(ChipError):
            chips_by_vendor("Imagination")

    def test_paper_quirks(self):
        # Section VIII-b: Nvidia and HD5500 JITs combine subgroup RMWs.
        assert get_chip("M4000").jit_coop_cv
        assert get_chip("GTX1080").jit_coop_cv
        assert get_chip("HD5500").jit_coop_cv
        assert not get_chip("IRIS").jit_coop_cv
        assert not get_chip("R9").jit_coop_cv
        # Section VI-A: ARM has no subgroups; Nvidia/ARM emulate
        # OpenCL 2.0 atomics.
        assert not get_chip("MALI").supports_subgroups
        assert not get_chip("M4000").native_ocl2_atomics
        assert not get_chip("MALI").native_ocl2_atomics
        # Section VIII-c: MALI's divergence sensitivity dwarfs the rest.
        mali = get_chip("MALI")
        assert all(
            mali.divergence_sensitivity > 10 * c.divergence_sensitivity
            for c in all_chips()
            if c.short_name != "MALI"
        )

    def test_launch_overhead_ordering(self):
        # Fig 5: Nvidia has the cheapest launches; MALI the dearest.
        overheads = {c.short_name: c.launch_overhead_us for c in all_chips()}
        assert overheads["M4000"] < min(
            v for k, v in overheads.items() if k not in ("M4000", "GTX1080")
        )
        assert overheads["MALI"] == max(overheads.values())


class TestChipModel:
    def test_validation(self):
        chip = get_chip("R9")
        with pytest.raises(ChipError):
            chip.with_overrides(n_cus=0)
        with pytest.raises(ChipError):
            chip.with_overrides(sg_size=0)
        with pytest.raises(ChipError):
            chip.with_overrides(barrier_divergence_relief=1.5)
        with pytest.raises(ChipError):
            chip.with_overrides(supports_subgroups=False)  # sg_size != 1

    def test_lockstep_subgroup_barrier_free(self):
        assert get_chip("R9").effective_sg_barrier_ns() == 0.0
        assert get_chip("IRIS").effective_sg_barrier_ns() > 0.0

    def test_atomic_emulation_cost(self):
        m4000 = get_chip("M4000")
        assert m4000.effective_atomic_rmw_ns() > m4000.atomic_rmw_ns
        r9 = get_chip("R9")
        assert r9.effective_atomic_rmw_ns() == r9.atomic_rmw_ns

    def test_supports_wg_size(self):
        assert get_chip("M4000").supports_wg_size(1024)
        assert not get_chip("R9").supports_wg_size(512)
        assert not get_chip("R9").supports_wg_size(0)

    def test_occupancy_monotone_in_local_mem(self):
        chip = get_chip("GTX1080")
        assert chip.occupancy(128, 0) >= chip.occupancy(128, 16384)

    def test_utilisation_bounds(self):
        for chip in all_chips():
            for wg in (128, 256):
                u = chip.utilisation(wg)
                assert 0.0 <= u <= 1.0

    def test_utilisation_zero_when_unschedulable(self):
        chip = get_chip("MALI")
        assert chip.utilisation(128, local_mem_per_wg=10**9) == 0.0

    def test_with_overrides_creates_copy(self):
        chip = get_chip("R9")
        other = chip.with_overrides(noise_sigma=0.5)
        assert other.noise_sigma == 0.5
        assert chip.noise_sigma != 0.5

    def test_summary_row_matches_table1(self):
        vendor, name, cus, sg, short = get_chip("MALI").summary_row()
        assert (vendor, name, cus, sg, short) == ("ARM", "Mali-T628", 4, 1, "MALI")
