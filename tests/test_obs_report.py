"""Unit tests for RunReport: persistence, checksums, rendering, CLI."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ReportError
from repro.obs import Recorder, RunReport
from repro.obs.report import REPORT_FORMAT, main as profile_main


class StepClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


def _sample_recorder() -> Recorder:
    rec = Recorder(clock=StepClock())
    rec.count("study.shards.priced", 8)
    rec.gauge("study.shards.total", 8)
    rec.observe("shard_s", 1.5)
    with rec.span("study.price_shard", chip="GTX1080", config="baseline"):
        pass
    return rec


def test_from_recorder_captures_everything(tmp_path):
    rec = _sample_recorder()
    rec.prior_segments = [{"counters": {"study.shards.priced": 3}}]
    report = RunReport.from_recorder(rec, meta={"engine": "batch"})
    assert report.counter("study.shards.priced") == 8
    assert report.total_counter("study.shards.priced") == 11
    assert report.meta == {"engine": "batch"}
    assert report.gauges["study.shards.total"] == 8
    assert report.spans[0]["name"] == "study.price_shard"


def test_save_load_roundtrip(tmp_path):
    report = RunReport.from_recorder(_sample_recorder(), meta={"jobs": 2})
    path = str(tmp_path / "report.json")
    report.save(path)
    loaded = RunReport.load(path)
    assert loaded.to_dict() == report.to_dict()


def test_save_is_deterministic_under_fake_clock(tmp_path):
    """Two identically-clocked runs serialise byte-for-byte equal."""
    paths = []
    for i in range(2):
        path = str(tmp_path / f"r{i}.json")
        RunReport.from_recorder(_sample_recorder(), meta={"k": "v"}).save(path)
        paths.append(path)
    with open(paths[0], "rb") as f0, open(paths[1], "rb") as f1:
        assert f0.read() == f1.read()


def test_load_rejects_corruption(tmp_path):
    path = str(tmp_path / "report.json")
    RunReport.from_recorder(_sample_recorder()).save(path)
    with open(path) as f:
        payload = json.load(f)
    payload["report"]["counters"]["study.shards.priced"] = 999
    with open(path, "w") as f:
        json.dump(payload, f)
    with pytest.raises(ReportError, match="checksum"):
        RunReport.load(path)


def test_load_rejects_truncation_and_wrong_format(tmp_path):
    path = str(tmp_path / "trunc.json")
    RunReport.from_recorder(_sample_recorder()).save(path)
    with open(path) as f:
        content = f.read()
    with open(path, "w") as f:
        f.write(content[: len(content) // 2])
    with pytest.raises(ReportError):
        RunReport.load(path)

    other = str(tmp_path / "other.json")
    with open(other, "w") as f:
        json.dump({"format": "something-else", "report": {}}, f)
    with pytest.raises(ReportError, match=REPORT_FORMAT):
        RunReport.load(other)

    with pytest.raises(ReportError):
        RunReport.load(str(tmp_path / "missing.json"))


def test_render_mentions_every_section():
    rec = _sample_recorder()
    rec.prior_segments = [{"counters": {"study.shards.priced": 2}}]
    text = RunReport.from_recorder(rec, meta={"engine": "batch"}).render()
    assert "engine" in text
    assert "study.shards.priced" in text
    assert "Incl. prior runs" in text  # merged-total column under resume
    assert "study.price_shard" in text
    assert "chip=GTX1080" in text
    assert "prior interrupted run" in text


def test_render_empty_report():
    assert RunReport().render() == "empty run report"


def test_profile_cli(tmp_path, capsys):
    path = str(tmp_path / "report.json")
    RunReport.from_recorder(_sample_recorder(), meta={"jobs": 1}).save(path)
    assert profile_main([path]) == 0
    out = capsys.readouterr().out
    assert "study.shards.priced" in out

    assert profile_main([str(tmp_path / "nope.json")]) == 1
    assert "profile" in capsys.readouterr().err
