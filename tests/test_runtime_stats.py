"""Tests for workload-statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs import CSRGraph
from repro.runtime import (
    access_irregularity,
    frontier_degree_stats,
    frontier_step_result,
)
from repro.runtime.stats import degree_histogram


class TestDegreeHistogram:
    def test_buckets_powers_of_two(self):
        hist = degree_histogram(np.array([1, 2, 3, 4, 7, 8]))
        # deg 1 -> bucket 0; 2,3 -> 1; 4,7 -> 2; 8 -> 3
        assert hist == (1, 2, 2, 1)

    def test_drops_zero_degrees(self):
        assert degree_histogram(np.array([0, 0, 1])) == (1,)

    def test_empty(self):
        assert degree_histogram(np.array([], dtype=np.int64)) == ()
        assert degree_histogram(np.array([0])) == ()

    @given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=60))
    def test_counts_preserved(self, degrees):
        hist = degree_histogram(np.array(degrees, dtype=np.int64))
        assert sum(hist) == sum(1 for d in degrees if d > 0)


class TestIrregularity:
    def test_sequential_access_is_low(self):
        assert access_irregularity(np.arange(1000)) == pytest.approx(1 / 16, abs=0.01)

    def test_scattered_access_is_high(self):
        rng = np.random.default_rng(0)
        dsts = rng.integers(0, 1_000_000, size=1000)
        assert access_irregularity(dsts) > 0.9

    def test_constant_access_is_zero(self):
        assert access_irregularity(np.zeros(100, dtype=np.int64)) == 0.0

    def test_degenerate_sizes(self):
        assert access_irregularity(np.array([], dtype=np.int64)) == 0.0
        assert 0.0 <= access_irregularity(np.array([5])) <= 1.0

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=100))
    def test_bounded(self, dsts):
        irr = access_irregularity(np.array(dsts, dtype=np.int64))
        assert 0.0 <= irr <= 1.0


class TestFrontierStats:
    def test_degree_stats(self, star_graph):
        mean, std, dmax, total = frontier_degree_stats(
            star_graph, np.array([0, 1])
        )
        assert mean == pytest.approx(4.0)
        assert dmax == 8
        assert total == 8

    def test_empty_frontier(self, star_graph):
        assert frontier_degree_stats(star_graph, np.empty(0, dtype=np.int64)) == (
            0.0,
            0.0,
            0,
            0,
        )

    def test_step_result_consistency(self, star_graph):
        res = frontier_step_result(
            star_graph,
            np.array([0]),
            destinations=star_graph.neighbors(0),
            pushes=3,
            more_work=True,
        )
        assert res.active_items == 1
        assert res.expanded_items == 1
        assert res.edges == 8
        assert res.deg_max == 8
        assert sum(res.deg_hist) == 1
        assert res.pushes == 3
        assert res.more_work

    def test_topology_driven_active_items(self, star_graph):
        res = frontier_step_result(
            star_graph, np.array([0]), active_items=star_graph.n_nodes
        )
        assert res.active_items == 9
        assert res.expanded_items == 1
