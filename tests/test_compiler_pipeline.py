"""Tests for the compiler driver (program x chip x config -> plan)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chips import all_chips, get_chip
from repro.compiler import OptConfig, compile_program, enumerate_configs
from repro.dsl import fixpoint_program, relax_kernel, topology_kernel, phased_program, Kernel, IterationSpace, Store
from repro.errors import CompileError, ForwardProgressError, InvalidConfigError


@pytest.fixture
def worklist_program():
    return fixpoint_program("p", [relax_kernel("relax", "dist")])


@pytest.fixture
def straightline_program():
    k = Kernel("once", IterationSpace.ALL_NODES, ops=[Store("x")])
    return phased_program("q", [k])


class TestCompileAllCombinations:
    def test_every_config_compiles_on_every_chip(self, worklist_program):
        """The full study sweep must be compilable everywhere."""
        for chip in all_chips():
            for config in enumerate_configs():
                plan = compile_program(worklist_program, chip, config)
                assert plan.kernel_plan("relax").wg_size == config.wg_size

    def test_plan_kernel_lookup(self, worklist_program):
        plan = compile_program(worklist_program, get_chip("R9"), OptConfig())
        with pytest.raises(KeyError):
            plan.kernel_plan("missing")


class TestOutlining:
    def test_outlines_fixpoint(self, worklist_program):
        plan = compile_program(
            worklist_program, get_chip("R9"), OptConfig(oitergb=True)
        )
        assert plan.outlined
        assert plan.outlined_workgroups > 0

    def test_outlined_launch_is_occupancy_safe(self, worklist_program):
        for chip in all_chips():
            plan = compile_program(worklist_program, chip, OptConfig(oitergb=True))
            assert plan.outlined_workgroups <= chip.occupancy(
                128, plan.max_local_mem_bytes
            )

    def test_straightline_program_not_outlined(self, straightline_program):
        plan = compile_program(
            straightline_program, get_chip("R9"), OptConfig(oitergb=True)
        )
        assert not plan.outlined

    def test_unschedulable_kernel_refused(self, worklist_program):
        from repro.ocl import CUResources

        tiny = get_chip("MALI").with_overrides(
            cu=CUResources(max_workgroups=4, max_threads=64, local_mem_bytes=64)
        )
        with pytest.raises((ForwardProgressError, CompileError)):
            compile_program(
                worklist_program, tiny, OptConfig(oitergb=True, coop_cv=True)
            )


class TestResourceLimits:
    def test_local_memory_overflow_rejected(self, worklist_program):
        from repro.ocl import CUResources

        chip = get_chip("IRIS").with_overrides(
            cu=CUResources(max_workgroups=16, max_threads=448, local_mem_bytes=1024)
        )
        with pytest.raises(CompileError):
            compile_program(
                worklist_program,
                chip,
                OptConfig(coop_cv=True, wg=True, sg=True, fg=8, wg_size=256),
            )

    def test_unsupported_wg_size_rejected(self, worklist_program):
        chip = get_chip("R9").with_overrides(max_wg_size=128)
        with pytest.raises(InvalidConfigError):
            compile_program(worklist_program, chip, OptConfig(wg_size=256))


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from([c.short_name for c in all_chips()]),
        st.integers(min_value=0, max_value=95),
    )
    def test_compilation_is_pure(self, chip_name, config_index):
        program = fixpoint_program("p", [relax_kernel("relax", "dist")])
        chip = get_chip(chip_name)
        config = enumerate_configs()[config_index]
        a = compile_program(program, chip, config)
        b = compile_program(program, chip, config)
        assert a.kernels == b.kernels
        assert a.outlined == b.outlined
        assert a.outlined_workgroups == b.outlined_workgroups
