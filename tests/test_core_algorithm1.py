"""Tests for Algorithm 1 on datasets with designed effects."""

import pytest

from repro.compiler import OptConfig
from repro.core import Analysis
from repro.study import TestCase

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, Analysis(ds)


class TestGlobalDecisions:
    def test_universal_speedup_enabled(self, designed):
        ds, analysis = designed
        assert analysis.decide(ds.tests, "sg").enabled

    def test_universal_slowdown_disabled(self, designed):
        ds, analysis = designed
        decision = analysis.decide(ds.tests, "wg")
        assert not decision.enabled
        assert not decision.inconclusive
        assert decision.median_ratio > 1.0

    def test_no_effect_opt_not_enabled(self, designed):
        ds, analysis = designed
        decision = analysis.decide(ds.tests, "oitergb")
        assert not decision.enabled

    def test_effect_sizes_track_design(self, designed):
        ds, analysis = designed
        sg = analysis.decide(ds.tests, "sg")
        wg = analysis.decide(ds.tests, "wg")
        assert sg.effect_size > 0.9  # almost all comparisons speed up
        assert wg.effect_size < 0.1

    def test_comparison_lists_normalised(self, designed):
        ds, analysis = designed
        a, b = analysis.comparison_lists(ds.tests, "sg")
        assert len(a) == len(b)
        assert all(x == 1.0 for x in b)
        assert all(0.7 < x < 0.9 for x in a)  # designed 0.8 +/- jitter


class TestChipSpecialisation:
    def test_chip_dependent_opt_split(self, designed):
        ds, analysis = designed
        per_chip = analysis.specialise(("chip",))
        assert per_chip[("C1",)].has("fg8")
        assert not per_chip[("C2",)].has("fg8")

    def test_universal_opts_on_both_chips(self, designed):
        ds, analysis = designed
        per_chip = analysis.specialise(("chip",))
        for key in (("C1",), ("C2",)):
            assert per_chip[key].has("sg")
            assert not per_chip[key].has("wg")

    def test_partitions_cover_all_tests(self, designed):
        ds, analysis = designed
        groups = analysis.partitions(("chip", "app"))
        assert len(groups) == 4
        assert sum(len(v) for v in groups.values()) == len(ds.tests)

    def test_unknown_dimension_rejected(self, designed):
        _, analysis = designed
        with pytest.raises(ValueError):
            analysis.partitions(("flavour",))


class TestFgConflict:
    def test_mutually_exclusive_variants_resolved(self, designed):
        """fg (0.9x) and fg8 (0.7x on C1) both help on C1; only the
        stronger survives in the recommended configuration."""
        ds, analysis = designed
        decisions = analysis.opts_for_partition(ds.tests_where(chip="C1"))
        assert decisions["fg8"].enabled
        assert not decisions["fg"].enabled
        config = analysis.config_for_partition(ds.tests_where(chip="C1"))
        assert config.fg == 8


class TestInconclusive:
    def test_zero_noise_no_effect_is_inconclusive(self):
        """With no significant comparisons at all, the analysis must
        report '?' rather than guessing (Table IX, fg8 on MALI)."""
        ds = build_synthetic_dataset(
            effects=lambda opt, test: 1.0, jitter=0.0
        )
        analysis = Analysis(ds)
        decision = analysis.decide(ds.tests, "sg")
        assert decision.inconclusive
        assert decision.n_samples < 3
        assert decision.mark() == "?"

    def test_marks(self, designed):
        ds, analysis = designed
        assert analysis.decide(ds.tests, "sg").mark() == "+"
        assert analysis.decide(ds.tests, "wg").mark() == "-"


class TestCaching:
    def test_significance_cache_consistent(self, designed):
        ds, analysis = designed
        first = analysis.decide(ds.tests, "sg")
        second = analysis.decide(ds.tests, "sg")
        assert first == second

    def test_specialise_decisions_match_specialise(self, designed):
        ds, analysis = designed
        configs = analysis.specialise(("chip",))
        decisions = analysis.specialise_decisions(("chip",))
        for key, config in configs.items():
            enabled = {o for o, d in decisions[key].items() if d.enabled}
            assert OptConfig.from_names(enabled) == config
