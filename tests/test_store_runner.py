"""Integration tests for the columnar study path.

Covers the worker chunk-spill protocol (``--jobs`` with
``store="v3"``), columnar checkpoint shards and mixed-store resume,
the shared trace cache and its observability counters, and ``repro
doctor`` on checkpoints holding ``.v3`` shards.
"""

from __future__ import annotations

import os

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.graphs import rmat_graph, road_network
from repro.graphs.inputs import StudyInput
from repro.obs import Recorder, RunReport
from repro.store import ColumnarDataset, load_trace_cache
from repro.study import StudyConfig, collect_traces, run_study
from repro.study.checkpoint import StudyCheckpoint, study_fingerprint
from repro.study.doctor import diagnose_checkpoint


@pytest.fixture(scope="module")
def tiny_config() -> StudyConfig:
    """2 apps x 2 inputs x 2 chips x 12 configurations."""
    road = road_network(12, 12, seed=11, name="s-road")
    rmat = rmat_graph(7, edge_factor=8, seed=11, name="s-rmat")
    return StudyConfig(
        apps=[get_application("bfs-wl"), get_application("sssp-nf")],
        inputs={
            "s-road": StudyInput(
                name="s-road",
                input_class="road",
                description="store test road",
                _builder=lambda: road,
            ),
            "s-rmat": StudyInput(
                name="s-rmat",
                input_class="social",
                description="store test rmat",
                _builder=lambda: rmat,
            ),
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[::8],
    )


@pytest.fixture(scope="module")
def serial_dataset(tiny_config):
    return run_study(tiny_config, jobs=1, engine="batch")


class TestStoreSelection:
    def test_serial_v3_identical_to_rows(self, tiny_config, serial_dataset):
        ds = run_study(tiny_config, store="v3")
        assert isinstance(ds, ColumnarDataset)
        assert ds == serial_dataset
        assert ds.tests == serial_dataset.tests
        assert [c.key() for c in ds.configs] == [
            c.key() for c in serial_dataset.configs
        ]

    def test_parallel_v3_identical_to_serial(
        self, tiny_config, serial_dataset
    ):
        ds = run_study(tiny_config, jobs=2, store="v3")
        assert isinstance(ds, ColumnarDataset)
        assert ds == serial_dataset

    def test_unknown_store_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="store"):
            run_study(tiny_config, store="parquet")


class TestColumnarCheckpoint:
    def test_checkpoint_holds_v3_shards(self, tiny_config, serial_dataset,
                                        tmp_path):
        ckpt = str(tmp_path / "ckpt")
        ds = run_study(
            tiny_config, jobs=2, checkpoint=ckpt, store="v3"
        )
        assert ds == serial_dataset
        names = sorted(os.listdir(ckpt))
        shards = [n for n in names if n.startswith("shard-")]
        assert shards and all(n.endswith(".v3") for n in shards)
        assert len(shards) == 2 * 12  # full grid
        # No spill chunks left behind after renaming into shards.
        assert not [n for n in names if n.startswith("chunk-")]

    def test_resume_from_v3_shards(self, tiny_config, serial_dataset,
                                   tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        # Drop two shards; a resumed run re-prices exactly those.
        removed = sorted(
            n for n in os.listdir(ckpt) if n.startswith("shard-")
        )[:2]
        for name in removed:
            os.unlink(os.path.join(ckpt, name))
        resumed = run_study(
            tiny_config, jobs=2, checkpoint=ckpt, resume=True, store="v3"
        )
        assert resumed == serial_dataset

    def test_corrupt_v3_shard_repriced_on_resume(
        self, tiny_config, serial_dataset, tmp_path
    ):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        victim = sorted(
            n for n in os.listdir(ckpt) if n.startswith("shard-")
        )[0]
        path = os.path.join(ckpt, victim)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF
        open(path, "wb").write(bytes(data))
        resumed = run_study(
            tiny_config, jobs=2, checkpoint=ckpt, resume=True, store="v3"
        )
        assert resumed == serial_dataset

    def test_mixed_store_resume(self, tiny_config, serial_dataset, tmp_path):
        """JSON shards from an older run feed a v3-store resume."""
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt)  # rows -> .json
        removed = sorted(
            n for n in os.listdir(ckpt) if n.startswith("shard-")
        )[:3]
        for name in removed:
            os.unlink(os.path.join(ckpt, name))
        resumed = run_study(
            tiny_config, jobs=2, checkpoint=ckpt, resume=True, store="v3"
        )
        assert isinstance(resumed, ColumnarDataset)
        assert resumed == serial_dataset
        exts = {
            os.path.splitext(n)[1]
            for n in os.listdir(ckpt)
            if n.startswith("shard-")
        }
        assert exts == {".json", ".v3"}


class TestTraceCache:
    def test_cache_written_and_loadable(self, tiny_config, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt)
        fingerprint = study_fingerprint(
            tiny_config, "batch", collect_traces(tiny_config)
        )
        caches = [n for n in os.listdir(ckpt) if n.startswith("traces-")]
        assert caches == [f"traces-{fingerprint}.bin"]
        traces = load_trace_cache(
            os.path.join(ckpt, caches[0]), fingerprint=fingerprint
        )
        assert traces  # one per (app, input)

    def test_workers_count_shared_traces(self, tiny_config, tmp_path):
        rec = Recorder(clock=lambda: 0.0)
        run_study(
            tiny_config,
            jobs=2,
            checkpoint=str(tmp_path / "ckpt"),
            recorder=rec,
        )
        report = RunReport.from_recorder(rec)
        assert report.total_counter("study.traces.shared") > 0
        assert report.total_counter("study.traces.rebuilt") == 0

    def test_workers_count_rebuilt_without_checkpoint(self, tiny_config):
        rec = Recorder(clock=lambda: 0.0)
        run_study(tiny_config, jobs=2, recorder=rec)
        report = RunReport.from_recorder(rec)
        assert report.total_counter("study.traces.rebuilt") > 0
        assert report.total_counter("study.traces.shared") == 0


class TestDoctorOnColumnarCheckpoints:
    def test_healthy_v3_checkpoint(self, tiny_config, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        diag = diagnose_checkpoint(ckpt)
        assert diag.ok
        assert not [f for f in diag.findings if f.severity == "error"]

    def test_corrupt_v3_shard_reported(self, tiny_config, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        victim = sorted(
            n for n in os.listdir(ckpt) if n.startswith("shard-")
        )[0]
        path = os.path.join(ckpt, victim)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0xFF
        open(path, "wb").write(bytes(data))
        diag = diagnose_checkpoint(ckpt)
        assert not diag.ok
        assert any(f.code == "shard-corrupt" for f in diag.findings)
        assert any("re-priced" in step for step in diag.repair_plan)

    def test_twin_shards_flagged(self, tiny_config, tmp_path):
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        twin_src = sorted(
            n for n in os.listdir(ckpt) if n.endswith(".v3")
        )[0]
        # Fabricate a JSON twin for the same task.
        twin = twin_src.replace(".v3", ".json")
        with open(os.path.join(ckpt, twin), "w") as f:
            f.write("{}")
        diag = diagnose_checkpoint(ckpt)
        assert any(f.code == "shard-twin" for f in diag.findings)

    def test_trace_cache_not_misread_as_shard(self, tiny_config, tmp_path):
        """traces-*.bin in the directory never confuses the doctor."""
        ckpt = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt, store="v3")
        assert any(
            n.startswith("traces-") for n in os.listdir(ckpt)
        )
        diag = diagnose_checkpoint(ckpt)
        assert diag.ok


class TestCheckpointSpillHygiene:
    def test_fresh_open_clears_stale_spill_files(self, tiny_config,
                                                 tmp_path):
        ckpt_dir = str(tmp_path / "ckpt")
        run_study(tiny_config, jobs=2, checkpoint=ckpt_dir, store="v3")
        # Simulate a crashed worker leaving a chunk behind.
        stale = os.path.join(ckpt_dir, "chunk-0000-0000.v3")
        with open(stale, "wb") as f:
            f.write(b"junk")
        fingerprint = study_fingerprint(
            tiny_config, "batch", collect_traces(tiny_config)
        )
        ckpt = StudyCheckpoint(ckpt_dir)
        ckpt.open(fingerprint, n_chips=2, n_configs=12, resume=False)
        assert not os.path.exists(stale)
