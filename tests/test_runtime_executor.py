"""Tests for the functional executor and trace collection."""

import numpy as np
import pytest

from repro.apps import get_application
from repro.dsl import Invoke, IterationSpace, Kernel, Program, Store, fixpoint_program, topology_kernel
from repro.errors import ExecutionError
from repro.runtime import LaunchRecord, StepResult, Trace, execute


class CountingApp:
    """Minimal Application-protocol object for executor tests."""

    def __init__(self, iterations=3):
        self.iterations = iterations

    def program(self):
        return fixpoint_program(
            "counter",
            [topology_kernel("tick", "x", "x")],
            convergence="flag",
        )

    def init_state(self, graph, source):
        return {"count": 0}

    def kernel_step(self, kernel, state, graph):
        state["count"] += 1
        return StepResult(
            active_items=graph.n_nodes,
            more_work=state["count"] < self.iterations,
        )

    def extract_result(self, state, graph):
        return np.array([state["count"]], dtype=np.float64)


class TestExecutor:
    def test_fixpoint_runs_until_convergence(self, line_graph):
        result = execute(CountingApp(iterations=5), line_graph)
        assert result.state["count"] == 5
        assert result.trace.n_fixpoint_iterations == 5
        assert result.trace.converged

    def test_nonconvergence_raises(self, line_graph):
        class Forever(CountingApp):
            def kernel_step(self, kernel, state, graph):
                return StepResult(active_items=1, more_work=True)

        with pytest.raises(ExecutionError):
            execute(Forever(), line_graph, max_iterations=10)

    def test_trace_records_every_launch(self, line_graph):
        result = execute(CountingApp(iterations=4), line_graph)
        assert result.trace.n_launches == 4
        assert all(r.kernel == "tick" for r in result.trace.launches)
        assert all(r.in_fixpoint for r in result.trace.launches)
        assert [r.iteration for r in result.trace.launches] == [0, 1, 2, 3]

    def test_checksum_recorded(self, line_graph):
        result = execute(CountingApp(), line_graph)
        assert result.trace.result_checksum == pytest.approx(3.0)

    def test_real_app_trace_shape(self, small_road):
        app = get_application("bfs-wl")
        result = app.run(small_road)
        trace = result.trace
        # init launch outside the fixpoint, steps inside.
        outside = [r for r in trace.launches if not r.in_fixpoint]
        inside = [r for r in trace.launches if r.in_fixpoint]
        assert len(outside) == 1
        assert len(inside) == trace.n_fixpoint_iterations
        assert trace.total_edges > 0
        assert trace.total_pushes > 0


class TestTraceSerialisation:
    def test_roundtrip(self, small_road):
        app = get_application("bfs-wl")
        trace = app.run(small_road).trace
        rebuilt = Trace.from_json(trace.to_json())
        assert rebuilt.program == trace.program
        assert rebuilt.n_launches == trace.n_launches
        assert rebuilt.launches == trace.launches
        assert rebuilt.result_checksum == trace.result_checksum

    def test_launch_record_validation(self):
        with pytest.raises(ValueError):
            LaunchRecord(
                kernel="k", iteration=0, in_fixpoint=True,
                active_items=-1, expanded_items=0, edges=0,
            )
        with pytest.raises(ValueError):
            LaunchRecord(
                kernel="k", iteration=0, in_fixpoint=True,
                active_items=0, expanded_items=0, edges=0, irregularity=2.0,
            )

    def test_summary_properties(self):
        trace = Trace(program="p", graph="g")
        trace.add(LaunchRecord("a", -1, False, 10, 5, 20, pushes=2))
        trace.add(LaunchRecord("b", 0, True, 10, 5, 30, pushes=3))
        trace.add(LaunchRecord("b", 1, True, 10, 5, 40, pushes=4))
        assert trace.n_launches == 3
        assert trace.n_fixpoint_iterations == 2
        assert trace.total_edges == 90
        assert trace.total_pushes == 9
        assert len(list(trace.launches_of("b"))) == 2
