"""Tests for graph file I/O."""

import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    CSRGraph,
    load_dimacs,
    load_edge_list,
    load_graph,
    save_dimacs,
    save_edge_list,
)


class TestDimacs:
    def test_roundtrip(self, tmp_path, small_road):
        path = str(tmp_path / "g.gr")
        save_dimacs(small_road, path)
        loaded = load_dimacs(path)
        assert loaded.n_nodes == small_road.n_nodes
        assert sorted(loaded.edges()) == sorted(small_road.edges())

    def test_parses_reference_format(self, tmp_path):
        path = tmp_path / "t.gr"
        path.write_text(
            "c sample\n"
            "p sp 3 2\n"
            "a 1 2 10\n"
            "a 2 3 20\n"
        )
        g = load_dimacs(str(path))
        assert g.n_nodes == 3
        assert sorted(g.edges()) == [(0, 1), (1, 2)]
        assert sorted(g.weights.tolist()) == [10.0, 20.0]

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_malformed_arc(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\nq 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gr"
        path.write_text("c only comments\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))


class TestEdgeList:
    def test_roundtrip_unweighted(self, tmp_path):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3), (3, 0)])
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_roundtrip_weighted(self, tmp_path):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], [1.5, 2.5])
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path, weighted=True)
        assert loaded.weights is not None
        assert sorted(loaded.weights.tolist()) == [1.5, 2.5]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# snap comment\n% konect comment\n0 1\n1 2\n")
        g = load_edge_list(str(path))
        assert g.n_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(str(path))

    def test_weighted_requires_third_column(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(str(path), weighted=True)

    def test_empty_edge_list(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        g = load_edge_list(str(path))
        assert g.n_nodes == 0
        assert g.n_edges == 0


class TestDispatch:
    def test_gr_extension_uses_dimacs(self, tmp_path, small_road):
        path = str(tmp_path / "g.gr")
        save_dimacs(small_road, path)
        assert load_graph(path).n_nodes == small_road.n_nodes

    def test_other_extension_uses_edge_list(self, tmp_path):
        g = CSRGraph.from_edges(2, [(0, 1)])
        path = str(tmp_path / "g.edges")
        save_edge_list(g, path)
        assert load_graph(path).n_edges == 1
