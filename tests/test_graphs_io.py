"""Tests for graph file I/O."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graphs import (
    CSRGraph,
    load_dimacs,
    load_edge_list,
    load_graph,
    save_dimacs,
    save_edge_list,
)


class TestDimacs:
    def test_roundtrip(self, tmp_path, small_road):
        path = str(tmp_path / "g.gr")
        save_dimacs(small_road, path)
        loaded = load_dimacs(path)
        assert loaded.n_nodes == small_road.n_nodes
        assert sorted(loaded.edges()) == sorted(small_road.edges())

    def test_parses_reference_format(self, tmp_path):
        path = tmp_path / "t.gr"
        path.write_text(
            "c sample\n"
            "p sp 3 2\n"
            "a 1 2 10\n"
            "a 2 3 20\n"
        )
        g = load_dimacs(str(path))
        assert g.n_nodes == 3
        assert sorted(g.edges()) == [(0, 1), (1, 2)]
        assert sorted(g.weights.tolist()) == [10.0, 20.0]

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("a 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_malformed_arc(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 2\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\nq 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.gr"
        path.write_text("c only comments\n")
        with pytest.raises(GraphFormatError):
            load_dimacs(str(path))


class TestEdgeList:
    def test_roundtrip_unweighted(self, tmp_path):
        g = CSRGraph.from_edges(4, [(0, 1), (2, 3), (3, 0)])
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(g.edges())

    def test_roundtrip_weighted(self, tmp_path):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], [1.5, 2.5])
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path, weighted=True)
        assert loaded.weights is not None
        assert sorted(loaded.weights.tolist()) == [1.5, 2.5]

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# snap comment\n% konect comment\n0 1\n1 2\n")
        g = load_edge_list(str(path))
        assert g.n_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(str(path))

    def test_weighted_requires_third_column(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(str(path), weighted=True)

    def test_empty_edge_list_rejected(self, tmp_path):
        # An edge list with no edges is more likely a truncated download
        # than a deliberate input.
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            load_edge_list(str(path))

    def test_negative_id_names_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2 -3\n")
        with pytest.raises(GraphFormatError, match=r"bad\.txt:2"):
            load_edge_list(str(path))

    def test_overflowing_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text(f"0 {2**60}\n")
        with pytest.raises(GraphFormatError, match="overflows"):
            load_edge_list(str(path))

    def test_non_integer_id(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("zero one\n")
        with pytest.raises(GraphFormatError, match="not an integer"):
            load_edge_list(str(path))

    def test_non_finite_weight(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 inf\n")
        with pytest.raises(GraphFormatError, match="non-finite"):
            load_edge_list(str(path), weighted=True)

    def test_binary_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_bytes(b"\xff\xfe\x00\x01 binary \x80 junk")
        with pytest.raises(GraphFormatError):
            load_edge_list(str(path))


class TestDimacsHardening:
    def test_arc_outside_declared_range(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na 1 5 1\n")
        with pytest.raises(GraphFormatError, match="node range"):
            load_dimacs(str(path))

    def test_truncated_arc_count(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 3 5\na 1 2 1\n")
        with pytest.raises(GraphFormatError, match="truncated"):
            load_dimacs(str(path))

    def test_zero_node_graph(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 0 0\n")
        with pytest.raises(GraphFormatError, match="empty graph"):
            load_dimacs(str(path))

    def test_duplicate_problem_line(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\np sp 2 1\na 1 2 1\n")
        with pytest.raises(GraphFormatError, match="duplicate problem"):
            load_dimacs(str(path))

    def test_negative_arc_id(self, tmp_path):
        path = tmp_path / "bad.gr"
        path.write_text("p sp 2 1\na -1 2 1\n")
        with pytest.raises(GraphFormatError, match="negative"):
            load_dimacs(str(path))

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphFormatError, match="unreadable"):
            load_dimacs(str(tmp_path / "nope.gr"))


_CORPUS_DIR = os.path.join(os.path.dirname(__file__), "data", "malformed")


class TestMalformedCorpus:
    """Every file in the committed corpus must raise GraphFormatError
    naming the offending path — never ValueError/IndexError/etc."""

    @pytest.mark.parametrize(
        "filename", sorted(os.listdir(_CORPUS_DIR))
    )
    def test_corpus_file_rejected(self, filename):
        path = os.path.join(_CORPUS_DIR, filename)
        weighted = "weight" in filename
        with pytest.raises(GraphFormatError) as excinfo:
            if filename.endswith(".gr"):
                load_dimacs(path)
            else:
                load_edge_list(path, weighted=weighted)
        assert filename in str(excinfo.value)


def _graph_strategy():
    return st.integers(2, 12).flatmap(
        lambda n: st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=1,
            max_size=24,
        ).map(lambda edges: CSRGraph.from_edges(n, edges))
    )


class TestFuzzRoundtrip:
    """Property: writers produce files the hardened loaders accept, and
    arbitrary text never escapes as a non-GraphFormatError."""

    @given(g=_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_edge_list_roundtrip(self, g, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("fuzz") / "g.txt")
        save_edge_list(g, path)
        loaded = load_edge_list(path)
        assert sorted(loaded.edges()) == sorted(g.edges())

    @given(g=_graph_strategy())
    @settings(max_examples=25, deadline=None)
    def test_dimacs_roundtrip(self, g, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("fuzz") / "g.gr")
        save_dimacs(g, path)
        loaded = load_dimacs(path)
        assert loaded.n_nodes == g.n_nodes
        assert sorted(loaded.edges()) == sorted(g.edges())

    @given(text=st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_text_never_escapes(self, text, tmp_path_factory):
        base = tmp_path_factory.mktemp("fuzz")
        for fname, loader in (
            ("f.txt", load_edge_list),
            ("f.gr", load_dimacs),
        ):
            path = str(base / fname)
            with open(path, "w", encoding="utf-8") as f:
                f.write(text)
            try:
                loader(path)
            except GraphFormatError:
                pass  # the only allowed failure mode


class TestDispatch:
    def test_gr_extension_uses_dimacs(self, tmp_path, small_road):
        path = str(tmp_path / "g.gr")
        save_dimacs(small_road, path)
        assert load_graph(path).n_nodes == small_road.n_nodes

    def test_other_extension_uses_edge_list(self, tmp_path):
        g = CSRGraph.from_edges(2, [(0, 1)])
        path = str(tmp_path / "g.edges")
        save_edge_list(g, path)
        assert load_graph(path).n_edges == 1
