"""Tests for the study inputs (Table VIII)."""

import pytest

from repro.graphs import INPUT_NAMES, analyze, get_input, study_inputs


class TestStudyInputs:
    def test_three_inputs(self):
        inputs = study_inputs(scale=0.1)
        assert set(inputs) == set(INPUT_NAMES)

    def test_classes_cover_paper_taxonomy(self):
        inputs = study_inputs(scale=0.1)
        assert {i.input_class for i in inputs.values()} == {
            "road",
            "social",
            "random",
        }

    def test_lazy_and_cached(self):
        inputs = study_inputs(scale=0.1)
        inp = inputs["rmat-sim"]
        assert inp._graph is None  # not built yet
        g1 = inp.graph
        assert inp.graph is g1  # cached

    def test_scale_grows_graphs(self):
        small = study_inputs(scale=0.05)["uniform-sim"].graph
        large = study_inputs(scale=0.2)["uniform-sim"].graph
        assert large.n_nodes > 2 * small.n_nodes

    def test_inputs_weighted(self):
        for inp in study_inputs(scale=0.05).values():
            assert inp.graph.has_weights

    def test_default_scale_signatures(self):
        """At study scale the inputs must classify into their classes."""
        inputs = study_inputs()
        assert analyze(inputs["usa-ny-sim"].graph).classify() == "road"
        assert analyze(inputs["rmat-sim"].graph).classify() == "social"
        assert analyze(inputs["uniform-sim"].graph).classify() == "random"

    def test_get_input_cached_registry(self):
        a = get_input("rmat-sim")
        b = get_input("rmat-sim")
        assert a is b

    def test_get_input_unknown(self):
        with pytest.raises(KeyError):
            get_input("facebook")

    def test_deterministic_given_seed(self):
        a = study_inputs(scale=0.05, seed=3)["usa-ny-sim"].graph
        b = study_inputs(scale=0.05, seed=3)["usa-ny-sim"].graph
        assert a == b
