"""Tests for the experiment modules (run on the mini study dataset)."""

import pytest

from repro.core import Analysis, build_strategies
from repro.experiments import (
    fig1_heatmap,
    fig2_top_opts,
    fig3_outcomes,
    fig4_slowdown,
    fig5_launch_overhead,
    table1_chips,
    table2_envelope,
    table3_ranking,
    table4_bias,
    table5_strategies,
    table7_apps,
    table8_inputs,
    table9_chip_function,
    table10_microbench,
)


@pytest.fixture(scope="module")
def strategies(mini_dataset):
    return build_strategies(mini_dataset, Analysis(mini_dataset))


class TestDefinitionalExperiments:
    def test_table1(self):
        out = table1_chips.run()
        assert "Quadro M4000" in out
        assert "MALI" in out
        assert len(table1_chips.data()) == 6

    def test_table7(self):
        out = table7_apps.run()
        assert len(table7_apps.data()) == 17
        assert "bfs-hybrid" in out
        assert "(*)" in out

    def test_table8(self):
        rows = table8_inputs.data()
        assert len(rows) == 3
        classes = {cls for _, cls, _ in rows}
        assert classes == {"road", "social", "random"}
        assert "usa-ny-sim" in table8_inputs.run()

    def test_fig5(self):
        out = fig5_launch_overhead.run(noisy=False)
        assert "GTX1080" in out and "MALI" in out

    def test_table10(self):
        sg, md = table10_microbench.data()
        assert set(sg) == set(md)
        assert "sg-cmb" in table10_microbench.run()


class TestDatasetExperiments:
    def test_fig1_includes_summary_row(self, mini_dataset):
        chips, full = fig1_heatmap.data(mini_dataset)
        assert set(chips) == set(mini_dataset.chips)
        for chip in chips:
            assert ("geomean", chip) in full
            assert (chip, "geomean") in full
            assert full[(chip, chip)] == pytest.approx(1.0)
        assert "geomean" in fig1_heatmap.run(mini_dataset)

    def test_table2(self, mini_dataset):
        env = table2_envelope.data(mini_dataset)
        assert set(env) == set(mini_dataset.chips)
        assert "Max speedup" in table2_envelope.run(mini_dataset)

    def test_table3(self, mini_dataset):
        rankings = table3_ranking.data(mini_dataset)
        assert len(rankings) == 95
        out = table3_ranking.run(mini_dataset)
        assert "Rank" in out
        full = table3_ranking.run(mini_dataset, full=True)
        assert len(full.splitlines()) > len(out.splitlines())

    def test_table4(self, mini_dataset):
        geo_pick, geo_rows, mwu_pick, mwu_rows = table4_bias.data(mini_dataset)
        assert set(geo_rows) == set(mini_dataset.chips)
        assert set(mwu_rows) == set(mini_dataset.chips)
        assert "mwu" in table4_bias.run(mini_dataset)

    def test_table5(self, mini_dataset, strategies):
        rows = table5_strategies.data(strategies)
        assert len(rows) == 10
        out = table5_strategies.run(strategies)
        assert "Table V" in out and "Table VI" in out

    def test_fig2(self, mini_dataset):
        counts = fig2_top_opts.data(mini_dataset)
        assert set(counts) == set(mini_dataset.chips)
        assert all(v >= 0 for per in counts.values() for v in per.values())

    def test_fig3(self, mini_dataset, strategies):
        outcomes = fig3_outcomes.data(mini_dataset, strategies)
        assert outcomes["oracle"].slowdowns == 0
        assert outcomes["baseline"].speedups == 0
        assert "Strategy" in fig3_outcomes.run(mini_dataset, strategies)

    def test_fig4(self, mini_dataset, strategies):
        series = fig4_slowdown.data(mini_dataset, strategies)
        assert series["oracle"] == pytest.approx(1.0)
        assert series["baseline"] >= max(
            v for k, v in series.items() if k != "baseline"
        ) - 1e-9
        assert "#" in fig4_slowdown.run(mini_dataset, strategies)

    def test_table9(self, mini_dataset):
        per_chip = table9_chip_function.data(mini_dataset)
        assert set(per_chip) == set(mini_dataset.chips)
        out = table9_chip_function.run(mini_dataset)
        assert "CL" in out


class TestReportCLI:
    def test_unknown_experiment_rejected(self):
        from repro.experiments.report import main

        assert main(["nonsense"]) == 2


class TestNvidiaOnly:
    def test_cross_vendor_envelope_wider(self, mini_dataset):
        from repro.experiments import nvidia_only

        speedups, slowdowns = nvidia_only.data(mini_dataset)
        assert speedups["cross-vendor"] >= speedups["nvidia-only"]
        assert slowdowns["cross-vendor"] >= 1.0
        out = nvidia_only.run(mini_dataset)
        assert "cross-vendor" in out

    def test_nvidia_scope_restricted_to_nvidia_chips(self, mini_dataset):
        from repro.experiments.nvidia_only import NVIDIA_CHIPS

        assert set(NVIDIA_CHIPS) == {"M4000", "GTX1080"}
