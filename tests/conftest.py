"""Shared fixtures: small graphs, a miniature study dataset, helpers."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.graphs import CSRGraph, rmat_graph, road_network, uniform_random_graph
from repro.study import StudyConfig, run_study
from repro.graphs.inputs import StudyInput


# -- small structural graphs ------------------------------------------------


@pytest.fixture
def line_graph() -> CSRGraph:
    """0 -> 1 -> 2 -> 3 -> 4, unit weights."""
    edges = [(i, i + 1) for i in range(4)]
    return CSRGraph.from_edges(5, edges, [1.0] * 4, name="line")


@pytest.fixture
def star_graph() -> CSRGraph:
    """Hub 0 connected out to 1..8 (weighted)."""
    edges = [(0, i) for i in range(1, 9)]
    return CSRGraph.from_edges(9, edges, list(range(1, 9)), name="star")


@pytest.fixture
def triangle_pair() -> CSRGraph:
    """Two triangles sharing no nodes, symmetric, unit weights."""
    tri1 = [(0, 1), (1, 2), (2, 0)]
    tri2 = [(3, 4), (4, 5), (5, 3)]
    g = CSRGraph.from_edges(6, tri1 + tri2, [1.0] * 6, name="tri-pair")
    return g.symmetrized()


@pytest.fixture
def disconnected_graph() -> CSRGraph:
    """Component {0,1,2} and isolated nodes 3, 4."""
    edges = [(0, 1), (1, 2), (2, 0)]
    return CSRGraph.from_edges(5, edges, [1.0, 2.0, 3.0], name="disc")


@pytest.fixture
def small_road() -> CSRGraph:
    return road_network(12, 12, seed=3)


@pytest.fixture
def small_rmat() -> CSRGraph:
    return rmat_graph(8, edge_factor=8, seed=3)


@pytest.fixture
def small_uniform() -> CSRGraph:
    return uniform_random_graph(200, 5.0, seed=3)


@pytest.fixture(params=["road", "rmat", "uniform"])
def any_small_graph(request, small_road, small_rmat, small_uniform) -> CSRGraph:
    return {"road": small_road, "rmat": small_rmat, "uniform": small_uniform}[
        request.param
    ]


# -- miniature study dataset --------------------------------------------------


def _tiny_inputs():
    road = road_network(16, 16, seed=5, name="tiny-road")
    rmat = rmat_graph(8, edge_factor=8, seed=5, name="tiny-rmat")
    return {
        "tiny-road": StudyInput(
            name="tiny-road",
            input_class="road",
            description="test road input",
            _builder=lambda: road,
        ),
        "tiny-rmat": StudyInput(
            name="tiny-rmat",
            input_class="social",
            description="test rmat input",
            _builder=lambda: rmat,
        ),
    }


@pytest.fixture(scope="session")
def mini_study_config() -> StudyConfig:
    """3 apps x 2 inputs x 3 chips x all 96 configurations."""
    return StudyConfig(
        apps=[
            get_application("bfs-wl"),
            get_application("sssp-nf"),
            get_application("pr-topo"),
        ],
        inputs=_tiny_inputs(),
        chips=[get_chip("GTX1080"), get_chip("R9"), get_chip("MALI")],
        configs=enumerate_configs(),
    )


@pytest.fixture(scope="session")
def mini_dataset(mini_study_config):
    """A real (small) study dataset shared across analysis tests."""
    return run_study(mini_study_config)


# -- golden regression files ---------------------------------------------------


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite the golden regression files under tests/goldens/ "
        "from the current outputs instead of comparing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """Whether this run rewrites goldens rather than asserting them."""
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture(scope="session")
def goldens_dir() -> str:
    return os.path.join(os.path.dirname(__file__), "goldens")


# -- helpers -------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
