"""Tests for the CSR graph representation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import CSRGraph


def edges_strategy(max_nodes=30, max_edges=80):
    return st.integers(min_value=1, max_value=max_nodes).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_from_edges_basic(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert g.n_nodes == 3
        assert g.n_edges == 3
        assert g.neighbors(0).tolist() == [1, 2]
        assert g.neighbors(1).tolist() == [2]
        assert g.neighbors(2).tolist() == []

    def test_from_edges_empty(self):
        g = CSRGraph.from_edges(4, [])
        assert g.n_nodes == 4
        assert g.n_edges == 0

    def test_weights_follow_edges(self):
        g = CSRGraph.from_edges(3, [(1, 2), (0, 1)], [9.0, 5.0])
        assert g.edge_weights_of(0).tolist() == [5.0]
        assert g.edge_weights_of(1).tolist() == [9.0]

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 5)])
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(-1, 0)])

    def test_rejects_bad_row_ptr(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2]), np.array([0]))
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 0, 0]))

    def test_rejects_mismatched_weights(self):
        with pytest.raises(GraphError):
            CSRGraph.from_edges(2, [(0, 1)], [1.0, 2.0])

    def test_arrays_read_only(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            g.col_idx[0] = 0

    @given(edges_strategy())
    def test_from_edges_preserves_multiset(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        rebuilt = sorted(zip(g.edge_sources().tolist(), g.col_idx.tolist()))
        assert rebuilt == sorted(edges)


class TestTransforms:
    def test_deduplicated_drops_self_loops_and_dups(self):
        g = CSRGraph.from_edges(3, [(0, 0), (0, 1), (0, 1), (1, 2)])
        d = g.deduplicated()
        assert sorted(d.edges()) == [(0, 1), (1, 2)]

    def test_deduplicated_keeps_min_weight(self):
        g = CSRGraph.from_edges(2, [(0, 1), (0, 1)], [7.0, 3.0])
        d = g.deduplicated()
        assert d.n_edges == 1
        assert d.weights[0] == 3.0

    def test_symmetrized_mirrors_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)], [4.0, 5.0])
        s = g.symmetrized()
        assert s.is_symmetric()
        assert sorted(s.edges()) == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_reversed_flips_all_edges(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)], [1.0, 2.0])
        r = g.reversed()
        assert sorted(r.edges()) == [(1, 0), (2, 0)]
        assert r.n_edges == g.n_edges

    def test_with_unit_weights(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        w = g.with_unit_weights()
        assert w.has_weights
        assert w.weights.tolist() == [1.0]

    @given(edges_strategy())
    def test_double_reverse_preserves_edges(self, data):
        n, edges = data
        g = CSRGraph.from_edges(n, edges)
        # Adjacency-list order may differ; the edge multiset must not.
        assert sorted(g.reversed().reversed().edges()) == sorted(g.edges())

    @given(edges_strategy())
    def test_symmetrized_is_symmetric(self, data):
        n, edges = data
        assert CSRGraph.from_edges(n, edges).symmetrized().is_symmetric()

    @given(edges_strategy())
    def test_deduplicated_has_no_duplicates(self, data):
        n, edges = data
        d = CSRGraph.from_edges(n, edges).deduplicated()
        pairs = list(d.edges())
        assert len(pairs) == len(set(pairs))
        assert all(s != t for s, t in pairs)


class TestAccessors:
    def test_out_degrees(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2), (2, 0)])
        assert g.out_degrees().tolist() == [2, 0, 1]
        assert g.out_degree(0) == 2

    def test_node_range_checked(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.neighbors(2)
        with pytest.raises(GraphError):
            g.out_degree(-1)

    def test_edge_weights_requires_weights(self):
        g = CSRGraph.from_edges(2, [(0, 1)])
        with pytest.raises(GraphError):
            g.edge_weights_of(0)

    def test_equality_considers_weights(self):
        a = CSRGraph.from_edges(2, [(0, 1)], [1.0])
        b = CSRGraph.from_edges(2, [(0, 1)], [2.0])
        c = CSRGraph.from_edges(2, [(0, 1)])
        assert a != b
        assert a != c
        assert a == CSRGraph.from_edges(2, [(0, 1)], [1.0])
