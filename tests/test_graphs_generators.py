"""Tests for the study input generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import (
    analyze,
    rmat_graph,
    road_network,
    uniform_random_graph,
)


class TestRoadNetwork:
    def test_deterministic(self):
        a = road_network(10, 10, seed=1)
        b = road_network(10, 10, seed=1)
        assert a == b

    def test_seed_changes_graph(self):
        assert road_network(10, 10, seed=1) != road_network(10, 10, seed=2)

    def test_size(self):
        g = road_network(8, 6, seed=0)
        assert g.n_nodes == 48

    def test_symmetric_and_weighted(self):
        g = road_network(8, 8, seed=0)
        assert g.is_symmetric()
        assert g.has_weights
        assert g.weights.min() >= 1

    def test_road_signature(self):
        p = analyze(road_network(40, 40, seed=0))
        assert p.avg_degree < 5.0
        assert p.degree_cv < 0.5
        assert p.est_diameter > 40  # Theta(width + height)

    def test_rejects_degenerate_grid(self):
        with pytest.raises(GraphError):
            road_network(1, 5)

    def test_rejects_bad_drop_fraction(self):
        with pytest.raises(GraphError):
            road_network(5, 5, drop_fraction=1.0)

    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_degrees_bounded_by_lattice(self, w, h):
        g = road_network(w, h, seed=0, shortcut_fraction=0.0)
        assert g.out_degrees().max() <= 4


class TestRmat:
    def test_deterministic(self):
        assert rmat_graph(7, seed=4) == rmat_graph(7, seed=4)

    def test_size(self):
        g = rmat_graph(8, edge_factor=4, seed=0)
        assert g.n_nodes == 256
        # Dedup removes some of the nominal 1024 edges.
        assert 256 < g.n_edges <= 1024

    def test_power_law_signature(self):
        p = analyze(rmat_graph(11, seed=0))
        assert p.degree_cv > 1.0
        assert p.max_degree > 20 * p.avg_degree
        assert p.est_diameter < 12

    def test_unweighted_option(self):
        assert not rmat_graph(6, seed=0, weighted=False).has_weights

    def test_no_self_loops_or_duplicates(self):
        g = rmat_graph(7, seed=2)
        pairs = list(g.edges())
        assert len(pairs) == len(set(pairs))
        assert all(s != d for s, d in pairs)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GraphError):
            rmat_graph(5, a=0.9, b=0.9, c=0.9)

    def test_rejects_bad_scale(self):
        with pytest.raises(GraphError):
            rmat_graph(0)


class TestUniformRandom:
    def test_deterministic(self):
        assert uniform_random_graph(100, 4, seed=9) == uniform_random_graph(
            100, 4, seed=9
        )

    def test_narrow_degree_distribution(self):
        p = analyze(uniform_random_graph(2000, 8.0, seed=0))
        assert p.degree_cv < 0.6
        assert p.est_diameter < 12

    def test_avg_degree_approximate(self):
        g = uniform_random_graph(1000, 6.0, seed=0)
        # Dedup loses a few edges; stay within 15%.
        assert 5.0 <= g.n_edges / g.n_nodes <= 6.0

    def test_rejects_bad_args(self):
        with pytest.raises(GraphError):
            uniform_random_graph(1, 4.0)
        with pytest.raises(GraphError):
            uniform_random_graph(10, 0.0)


class TestClassification:
    """The generators must land in their paper input classes."""

    def test_three_classes_distinct(self):
        road = analyze(road_network(40, 40, seed=1))
        social = analyze(rmat_graph(11, seed=1))
        rand = analyze(uniform_random_graph(2000, 8.0, seed=1))
        assert road.classify() == "road"
        assert social.classify() == "social"
        assert rand.classify() == "random"
