"""In-process tests for the asyncio strategy server.

Each test runs a real :class:`~repro.serve.server.StrategyServer` on a
loopback port inside ``asyncio.run`` and speaks raw HTTP/1.1 through
``asyncio.open_connection`` — the same byte stream a production client
would send, with no test-only shortcuts into the handler.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.errors import PredictionError, ServeError
from repro.obs import Recorder
from repro.serve import StrategyServer, TTLCache, build_index
from repro.study.dataset import PerfDataset

GOLDEN_DATASET = "mini-dataset.json.gz"


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def index(golden_dataset):
    return build_index(golden_dataset)


async def http_request(
    port: int, method: str, target: str, body: bytes = b"", host="127.0.0.1"
):
    """One raw HTTP/1.1 exchange; returns (status, parsed JSON, raw body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"{method} {target} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode() + body)
        await writer.drain()
        status_line = await reader.readline()
        status = int(status_line.split()[1])
        length = None
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":")[1])
        raw = await reader.readexactly(length)
        return status, json.loads(raw), raw
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


def run(coro):
    return asyncio.run(coro)


class StubPredictor:
    """A predictable stand-in for the batch-engine predictor."""

    def __init__(self, delay: float = 0.0) -> None:
        self.delay = delay
        self.calls = []

    def price(self, chip, app, inp, config):
        if self.delay:
            time.sleep(self.delay)  # runs in the executor thread
        if chip == "BOOM":
            raise PredictionError("no such chip")
        self.calls.append((chip, app, inp, config.key()))
        return {"chip": chip, "app": app, "input": inp, "config": config.key(),
                "predicted_us": 123.0, "times_us": [124.0], "repetitions": 1}


class BatchStubPredictor(StubPredictor):
    """A stub exposing ``price_many``, recording batch composition."""

    def __init__(self, delay: float = 0.0) -> None:
        super().__init__()
        self.batch_delay = delay
        self.batches = []

    def price_many(self, points):
        if self.batch_delay:
            time.sleep(self.batch_delay)
        self.batches.append([p[:3] for p in points])
        results = []
        for chip, app, inp, config in points:
            try:
                results.append(self.price(chip, app, inp, config))
            except PredictionError as exc:
                results.append(exc)
        return results


class TestEndpoints:
    def test_healthz(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            try:
                status, body, _ = await http_request(server.port, "GET", "/healthz")
            finally:
                await server.stop()
            return status, body

        status, body = run(go())
        assert status == 200
        assert body["status"] == "ok"
        assert body["entries"] == index.n_entries
        assert body["levels"]["chip+app+input"] == 18

    def test_strategy_exact_and_degraded(self, index, golden_dataset):
        t = golden_dataset.tests[0]

        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                s1, exact, _ = await http_request(
                    server.port,
                    "GET",
                    f"/v1/strategy?chip={t.chip}&app={t.app}&input={t.graph}",
                )
                s2, degraded, _ = await http_request(
                    server.port,
                    "GET",
                    "/v1/strategy?chip=UNKNOWN&app=UNKNOWN&input=UNKNOWN",
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return s1, exact, s2, degraded, counters

        s1, exact, s2, degraded, counters = run(go())
        assert (s1, s2) == (200, 200)
        assert not exact["degraded"]
        assert exact["served_level"] == "chip+app+input"
        assert degraded["degraded"]
        assert degraded["served_level"] == "global"
        assert counters["serve.fallbacks"] == 1
        assert counters["serve.requests.strategy"] == 2

    def test_strategy_cache_hit_returns_identical_payload(self, index):
        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                _, _, raw1 = await http_request(
                    server.port, "GET", "/v1/strategy?chip=MALI"
                )
                _, _, raw2 = await http_request(
                    server.port, "GET", "/v1/strategy?chip=MALI"
                )
                counters = dict(server.recorder.counters)
                cache_stats = server.cache.stats()
            finally:
                await server.stop()
            return raw1, raw2, counters, cache_stats

        raw1, raw2, counters, cache_stats = run(go())
        assert raw1 == raw2  # byte-identical, not merely equal
        # Known lattice coordinates are pre-serialized at build time, so
        # both requests bypass the TTL cache entirely.
        assert counters["serve.answers.precompiled"] == 2
        assert "serve.cache.hits" not in counters
        assert "serve.cache.misses" not in counters
        assert cache_stats["hits"] == 0
        assert cache_stats["misses"] == 0

    def test_strategy_validation_errors(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            try:
                s1, b1, _ = await http_request(
                    server.port, "GET", "/v1/strategy?vendor=ARM"
                )
                s2, b2, _ = await http_request(
                    server.port, "GET", "/v1/strategy?chip="
                )
                s3, _, _ = await http_request(server.port, "GET", "/nope")
                s4, _, _ = await http_request(server.port, "POST", "/v1/strategy")
            finally:
                await server.stop()
            return s1, b1, s2, b2, s3, s4

        s1, b1, s2, b2, s3, s4 = run(go())
        assert s1 == 400 and "vendor" in b1["error"]
        assert s2 == 400 and "empty value" in b2["error"]
        assert s3 == 404
        assert s4 == 405

    def test_metrics_counters_reconcile_with_requests(self, index):
        async def go():
            server = StrategyServer(index, recorder=Recorder())
            await server.start()
            try:
                for _ in range(3):
                    await http_request(server.port, "GET", "/v1/strategy?chip=R9")
                await http_request(server.port, "GET", "/healthz")
                status, metrics, _ = await http_request(
                    server.port, "GET", "/metrics"
                )
            finally:
                await server.stop()
            return status, metrics

        status, metrics = run(go())
        assert status == 200
        counters = metrics["counters"]
        # The /metrics request itself is the 5th; its own counter
        # increments at dispatch start, so it sees itself.
        assert counters["serve.requests"] == 5
        assert counters["serve.requests.strategy"] == 3
        assert counters["serve.answers.precompiled"] == 3
        assert metrics["cache"]["size"] == 0  # precompiled path skips it
        assert metrics["requests_served"] == 5
        assert "serve.latency_ms" not in metrics["counters"]
        assert "spans" not in metrics  # unbounded; never exposed


class TestPredict:
    def test_predict_batch_with_explicit_and_advisor_configs(self, index):
        stub = StubPredictor()

        async def go():
            server = StrategyServer(index, predictor=stub, recorder=Recorder())
            await server.start()
            try:
                body = json.dumps(
                    {
                        "queries": [
                            {"chip": "MALI", "app": "bfs-wl",
                             "input": "tiny-road", "config": "wg+sg"},
                            {"chip": "MALI", "app": "bfs-wl",
                             "input": "tiny-road"},
                            {"chip": "BOOM", "app": "bfs-wl",
                             "input": "tiny-road", "config": "wg"},
                            {"chip": "MALI", "app": "bfs-wl"},
                        ]
                    }
                ).encode()
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict", body
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return status, out, counters

        status, out, counters = run(go())
        assert status == 200
        assert out["errors"] == 2
        r0, r1, r2, r3 = out["results"]
        assert r0["config"] == "sg+wg"
        # Advisor-selected config comes with its provenance attached.
        assert r1["config"] == r1["advisor"]["config"]
        assert not r1["advisor"]["degraded"]
        assert "no such chip" in r2["error"]
        assert "input" in r3["error"]
        assert counters["serve.predictions"] == 2
        assert counters["serve.predictions.errors"] == 2

    def test_predict_disabled_returns_501(self, index):
        async def go():
            server = StrategyServer(index, predictor=None)
            await server.start()
            try:
                body = json.dumps(
                    {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road"}
                ).encode()
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict", body
                )
            finally:
                await server.stop()
            return status, out

        status, out = run(go())
        assert status == 501
        assert "disabled" in out["error"]

    def test_predict_rejects_bad_json_and_empty_queries(self, index):
        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                s1, _, _ = await http_request(
                    server.port, "POST", "/v1/predict", b"{not json"
                )
                s2, _, _ = await http_request(
                    server.port, "POST", "/v1/predict", b"[]"
                )
            finally:
                await server.stop()
            return s1, s2

        assert run(go()) == (400, 400)


class TestOperationalLimits:
    def test_request_timeout_returns_503_and_counts(self, index):
        async def go():
            server = StrategyServer(
                index,
                predictor=StubPredictor(delay=0.4),
                request_timeout=0.05,
                recorder=Recorder(),
            )
            await server.start()
            try:
                body = json.dumps(
                    {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road"}
                ).encode()
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict", body
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return status, out, counters

        status, out, counters = run(go())
        assert status == 503
        assert "timeout" in out["error"]
        assert counters["serve.timeouts"] == 1
        assert counters["serve.responses.5xx"] == 1

    def test_oversized_body_is_rejected(self, index):
        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict", b"x" * (1 << 20 + 1)
                )
            finally:
                await server.stop()
            return status, out

        status, out = run(go())
        assert status == 413

    def test_sixteen_concurrent_clients_get_identical_answers(self, index):
        async def go():
            server = StrategyServer(index, max_concurrency=4)
            await server.start()
            try:
                results = await asyncio.gather(
                    *(
                        http_request(
                            server.port,
                            "GET",
                            "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road",
                        )
                        for _ in range(16)
                    )
                )
            finally:
                await server.stop()
            return results

        results = run(go())
        assert all(status == 200 for status, _, _ in results)
        raws = {raw for _, _, raw in results}
        assert len(raws) == 1  # byte-identical across all 16 clients

    def test_invalid_construction(self, index):
        with pytest.raises(ServeError):
            StrategyServer(index, max_concurrency=0)
        with pytest.raises(ServeError):
            StrategyServer(index, request_timeout=0)


class TestShutdown:
    def test_stop_drains_inflight_request(self, index):
        """A request racing shutdown completes before the server exits."""

        async def go():
            server = StrategyServer(
                index, predictor=StubPredictor(delay=0.2), request_timeout=5.0
            )
            await server.start()
            body = json.dumps(
                {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road"}
            ).encode()
            inflight = asyncio.ensure_future(
                http_request(server.port, "POST", "/v1/predict", body)
            )
            await asyncio.sleep(0.05)  # the predict is now in the executor
            await server.stop()
            status, out, _ = await inflight
            return status, out

        status, out = run(go())
        assert status == 200
        assert out["results"][0]["predicted_us"] == 123.0

    def test_stop_closes_idle_keepalive_connections(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            # Complete one keep-alive request, then go idle.
            writer.write(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            await reader.readline()
            await server.stop()
            # The server must have dropped the idle connection: reading
            # eventually hits EOF rather than hanging.
            data = await asyncio.wait_for(reader.read(), timeout=5.0)
            writer.close()
            return server._connections

        connections = run(go())
        assert connections == set()

    def test_requests_after_stop_are_refused(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            port = server.port
            await server.stop()
            try:
                await http_request(port, "GET", "/healthz")
            except OSError:
                return True
            return False

        assert run(go())


def _predict_body(*queries) -> bytes:
    return json.dumps({"queries": list(queries)}).encode()


class TestCoalescing:
    """ISSUE 6's predict micro-batching window."""

    def test_concurrent_requests_coalesce_into_one_batch(self, index):
        """Four concurrent single-item requests arriving within the
        window ride one vectorized ``price_many`` call."""
        stub = BatchStubPredictor()

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                recorder=Recorder(),
                predict_window=0.2,
            )
            await server.start()
            try:
                bodies = [
                    _predict_body(
                        {"chip": "MALI", "app": "bfs-wl",
                         "input": f"graph-{i}", "config": "wg"}
                    )
                    for i in range(4)
                ]
                responses = await asyncio.gather(
                    *(
                        http_request(server.port, "POST", "/v1/predict", b)
                        for b in bodies
                    )
                )
                counters = dict(server.recorder.counters)
                histograms = dict(server.recorder.histograms)
            finally:
                await server.stop()
            return responses, counters, histograms

        responses, counters, histograms = run(go())
        assert all(status == 200 for status, _, _ in responses)
        assert len(stub.batches) == 1
        assert len(stub.batches[0]) == 4
        assert counters["serve.predict.batches"] == 1
        count, total, lo, hi = histograms["serve.predict.batch_size"]
        assert (count, total) == (1, 4.0)
        # Every item still got its own correct answer.
        for i, (_, out, _) in enumerate(sorted(
            responses, key=lambda r: r[1]["results"][0]["input"]
        )):
            assert out["results"][0]["input"] == f"graph-{i}"

    def test_coalesced_and_sequential_responses_byte_identical(self, index):
        """Coalescing changes when pricing happens, never what a client
        reads: per-item response bytes are identical either way."""
        queries = [
            {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road",
             "config": "wg+sg"},
            {"chip": "GTX1080", "app": "pr-topo", "input": "tiny-rmat",
             "config": "baseline"},
            {"chip": "R9", "app": "mis-wl", "input": "tiny-road",
             "config": "wg"},
        ]

        async def serve_and_collect(window, concurrent):
            server = StrategyServer(
                index,
                predictor=BatchStubPredictor(),
                predict_window=window,
            )
            await server.start()
            try:
                if concurrent:
                    responses = await asyncio.gather(
                        *(
                            http_request(
                                server.port, "POST", "/v1/predict",
                                _predict_body(q),
                            )
                            for q in queries
                        )
                    )
                else:
                    responses = []
                    for q in queries:
                        responses.append(
                            await http_request(
                                server.port, "POST", "/v1/predict",
                                _predict_body(q),
                            )
                        )
            finally:
                await server.stop()
            return [raw for _, _, raw in responses]

        async def go():
            sequential = await serve_and_collect(0.0, concurrent=False)
            coalesced = await serve_and_collect(0.2, concurrent=True)
            return sequential, coalesced

        sequential, coalesced = run(go())
        assert sequential == coalesced

    def test_mixed_valid_and_invalid_items_in_one_batch(self, index):
        """Per-item errors survive coalescing: one bad item never
        poisons the batch it rode in on."""
        stub = BatchStubPredictor()

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                recorder=Recorder(),
                predict_window=0.2,
            )
            await server.start()
            try:
                good = _predict_body(
                    {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road",
                     "config": "wg"},
                    {"chip": "BOOM", "app": "bfs-wl", "input": "tiny-road",
                     "config": "wg"},
                )
                bad = _predict_body(
                    {"chip": "BOOM", "app": "bfs-wl", "input": "tiny-road",
                     "config": "wg"},
                )
                responses = await asyncio.gather(
                    http_request(server.port, "POST", "/v1/predict", good),
                    http_request(server.port, "POST", "/v1/predict", bad),
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return responses, counters

        responses, counters = run(go())
        (s1, out1, _), (s2, out2, _) = responses
        assert s1 == s2 == 200
        # All three priceable items coalesced into one engine call.
        assert len(stub.batches) == 1
        assert len(stub.batches[0]) == 3
        assert out1["errors"] == 1
        assert out1["results"][0]["predicted_us"] == 123.0
        assert "no such chip" in out1["results"][1]["error"]
        assert out2["errors"] == 1
        assert "no such chip" in out2["results"][0]["error"]
        assert counters["serve.predictions"] == 1
        assert counters["serve.predictions.errors"] == 2

    def test_max_batch_flushes_without_waiting_for_the_window(self, index):
        stub = BatchStubPredictor()

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                predict_window=30.0,  # never elapses within the test
                predict_max_batch=2,
            )
            await server.start()
            try:
                started = time.perf_counter()
                responses = await asyncio.gather(
                    *(
                        http_request(
                            server.port, "POST", "/v1/predict",
                            _predict_body(
                                {"chip": "MALI", "app": "bfs-wl",
                                 "input": f"graph-{i}", "config": "wg"}
                            ),
                        )
                        for i in range(4)
                    )
                )
                elapsed = time.perf_counter() - started
            finally:
                await server.stop()
            return responses, elapsed

        responses, elapsed = run(go())
        assert all(status == 200 for status, _, _ in responses)
        assert elapsed < 5.0  # size trigger, not the 30s window
        assert len(stub.batches) == 2
        assert all(len(batch) == 2 for batch in stub.batches)

    def test_engine_failure_fails_every_item_with_500(self, index):
        class ExplodingPredictor:
            def price_many(self, points):
                raise RuntimeError("engine went away")

        async def go():
            server = StrategyServer(
                index, predictor=ExplodingPredictor(), predict_window=0.05
            )
            await server.start()
            try:
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body(
                        {"chip": "MALI", "app": "bfs-wl",
                         "input": "tiny-road", "config": "wg"}
                    ),
                )
            finally:
                await server.stop()
            return status, out

        status, out = run(go())
        assert status == 500
        assert "engine went away" in out["error"]

    def test_invalid_coalescer_parameters(self, index):
        from repro.serve import PredictCoalescer

        with pytest.raises(ServeError):
            PredictCoalescer(StubPredictor(), window=-0.1)
        with pytest.raises(ServeError):
            PredictCoalescer(StubPredictor(), max_batch=0)
        with pytest.raises(ServeError):
            StrategyServer(index, predict_window=-1.0)
        with pytest.raises(ServeError):
            StrategyServer(index, predict_max_batch=0)


class TestFlushDeadline:
    """The hard deadline on coalesced predict flushes (ISSUE 9): one
    slow batch must fail fast with per-item 503s instead of stalling
    every waiter into the request timeout."""

    def test_slow_batch_times_out_every_waiter_as_503(self, index):
        stub = BatchStubPredictor(delay=1.0)  # far past the deadline

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                recorder=Recorder(),
                predict_window=0.1,
                predict_flush_timeout=0.2,
            )
            await server.start()
            try:
                responses = await asyncio.gather(
                    *(
                        http_request(
                            server.port, "POST", "/v1/predict",
                            _predict_body(
                                {"chip": "MALI", "app": "bfs-wl",
                                 "input": f"graph-{i}", "config": "wg"}
                            ),
                        )
                        for i in range(3)
                    )
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return responses, counters

        responses, counters = run(go())
        for status, out, _ in responses:
            assert status == 503  # every item blew the same deadline
            assert out["errors"] == 1
            assert "flush deadline" in out["results"][0]["error"]
            assert out["results"][0]["status"] == 503
        assert counters["serve.predict.flush_timeouts"] == 1  # one batch
        assert counters["serve.predictions.errors"] == 3

    def test_flush_timeouts_feed_the_circuit_breaker(self, index):
        from repro.serve import CircuitBreaker

        stub = BatchStubPredictor(delay=1.0)

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                recorder=Recorder(),
                predict_flush_timeout=0.1,
                breaker=CircuitBreaker(threshold=1, reset_timeout=60.0),
            )
            await server.start()
            try:
                body = _predict_body(
                    {"chip": "MALI", "app": "bfs-wl",
                     "input": "tiny-road", "config": "wg"}
                )
                s1, out1, _ = await http_request(
                    server.port, "POST", "/v1/predict", body
                )
                # The breaker opened on the flush timeout: this one
                # fast-fails without touching the engine.
                s2, out2, raw2 = await http_request(
                    server.port, "POST", "/v1/predict", body
                )
                counters = dict(server.recorder.counters)
                _, health, _ = await http_request(
                    server.port, "GET", "/healthz"
                )
            finally:
                await server.stop()
            return s1, s2, out2, counters, health

        s1, s2, out2, counters, health = run(go())
        assert s1 == 503
        assert s2 == 503
        assert "circuit breaker is open" in out2["error"]
        # The fast-fail never reached the engine: only the first
        # request's batch was ever dispatched.
        assert len(stub.batches) <= 1
        assert counters["serve.breaker.fast_fails"] == 1
        assert health["breaker"]["state"] == "open"

    def test_breaker_fast_fail_carries_retry_after(self, index):
        from repro.serve import CircuitBreaker

        async def go():
            server = StrategyServer(
                index,
                predictor=StubPredictor(),
                breaker=CircuitBreaker(threshold=1, reset_timeout=60.0),
            )
            await server.start()
            try:
                bad = _predict_body(
                    {"chip": "BOOM", "app": "bfs-wl",
                     "input": "tiny-road", "config": "wg"}
                )
                await http_request(
                    server.port, "POST", "/v1/predict", bad
                )  # PredictionError opens the threshold-1 breaker
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    body = _predict_body(
                        {"chip": "MALI", "app": "bfs-wl",
                         "input": "tiny-road", "config": "wg"}
                    )
                    writer.write(
                        b"POST /v1/predict HTTP/1.1\r\n"
                        b"Content-Length: %d\r\n"
                        b"Connection: close\r\n\r\n" % len(body) + body
                    )
                    await writer.drain()
                    raw = await reader.read(65536)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except ConnectionError:
                        pass
            finally:
                await server.stop()
            return raw

        raw = run(go())
        head = raw.split(b"\r\n\r\n", 1)[0]
        assert b"503" in head.split(b"\r\n", 1)[0]
        retry = [
            line for line in head.split(b"\r\n")
            if line.lower().startswith(b"retry-after:")
        ]
        assert retry, f"no Retry-After header in {head!r}"
        assert int(retry[0].split(b":")[1]) >= 1

    def test_disabled_deadline_lets_slow_batches_finish(self, index):
        stub = BatchStubPredictor(delay=0.3)

        async def go():
            server = StrategyServer(
                index,
                predictor=stub,
                predict_flush_timeout=0.0,  # disabled
            )
            await server.start()
            try:
                status, out, _ = await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body(
                        {"chip": "MALI", "app": "bfs-wl",
                         "input": "tiny-road", "config": "wg"}
                    ),
                )
            finally:
                await server.stop()
            return status, out

        status, out = run(go())
        assert status == 200
        assert out["errors"] == 0

    def test_invalid_flush_timeout_rejected(self, index):
        from repro.serve import PredictCoalescer

        with pytest.raises(ServeError):
            PredictCoalescer(StubPredictor(), flush_timeout=-0.1)


class TestBreakerProbeLifecycle:
    """The half-open probe slot must never leak: a request admitted as
    the probe that dies without an engine outcome (400 after admission,
    every item failing local validation, cancellation) has to release
    the latch so the next request can probe instead."""

    def test_unadjudicated_requests_do_not_latch_the_probe(self, index):
        from repro.serve import CircuitBreaker

        class Clock:
            t = 0.0

            def __call__(self) -> float:
                return self.t

        clock = Clock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)

        async def go():
            server = StrategyServer(
                index, predictor=StubPredictor(), breaker=breaker
            )
            await server.start()
            try:
                bad = _predict_body(
                    {"chip": "BOOM", "app": "bfs-wl",
                     "input": "tiny-road", "config": "wg"}
                )
                await http_request(
                    server.port, "POST", "/v1/predict", bad
                )  # PredictionError opens the threshold-1 breaker
                assert breaker.state == CircuitBreaker.OPEN
                clock.t = 5.0  # the reset window elapses: half-open next
                # Malformed JSON is rejected before the breaker is
                # consulted — it must not consume the probe slot.
                s1, _, _ = await http_request(
                    server.port, "POST", "/v1/predict", b'{"nope'
                )
                # A request whose only item fails local validation IS
                # admitted as the probe but never reaches the engine;
                # it must abandon the probe on the way out.
                s2, out2, _ = await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body({"chip": "MALI", "app": "bfs-wl"}),
                )
                # The probe slot is free again: a good request probes,
                # succeeds, and closes the circuit.
                s3, out3, _ = await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body(
                        {"chip": "MALI", "app": "bfs-wl",
                         "input": "tiny-road", "config": "wg"}
                    ),
                )
            finally:
                await server.stop()
            return s1, s2, out2, s3, out3

        s1, s2, out2, s3, out3 = run(go())
        assert s1 == 400
        assert s2 == 200 and out2["errors"] == 1
        assert s3 == 200 and out3["errors"] == 0
        assert breaker.state == CircuitBreaker.CLOSED


class TestControlPlaneAdmission:
    """/healthz and /metrics are exempt from admission shedding: an
    orchestrator probing a saturated-but-alive worker must see 200, or
    it kills the worker and makes the overload worse."""

    def test_health_and_metrics_answer_while_lookups_shed(self, index):
        from repro.serve import AdmissionController
        from repro.serve.admission import LOOKUP

        adm = AdmissionController(lookup_depth=1)
        assert adm.try_acquire(LOOKUP)  # pin the class at its watermark

        async def go():
            server = StrategyServer(index, admission=adm, recorder=Recorder())
            await server.start()
            try:
                s_lookup, shed, _ = await http_request(
                    server.port, "GET", "/v1/strategy?chip=MALI"
                )
                s_health, health, _ = await http_request(
                    server.port, "GET", "/healthz"
                )
                s_metrics, metrics, _ = await http_request(
                    server.port, "GET", "/metrics"
                )
            finally:
                await server.stop()
            return s_lookup, shed, s_health, health, s_metrics, metrics

        s_lookup, shed, s_health, health, s_metrics, metrics = run(go())
        assert s_lookup == 429
        assert shed["retry_after"] >= 1
        assert s_health == 200
        assert health["status"] == "ok"
        assert health["admission"]["shed"]["lookup"] == 1
        assert s_metrics == 200
        # Control-plane requests are not counted against the lookup
        # class either: pending stayed at the pinned slot only.
        assert metrics["counters"]["serve.shed.lookup"] == 1
