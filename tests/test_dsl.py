"""Tests for the DSL AST, builders and validation."""

import pytest

from repro.dsl import (
    AtomicRMW,
    Fixpoint,
    Invoke,
    IterationSpace,
    Kernel,
    Load,
    NeighborLoop,
    Program,
    Push,
    Store,
    edge_kernel,
    fixpoint_program,
    phased_program,
    relax_kernel,
    topology_kernel,
    validate_kernel,
    validate_program,
)
from repro.errors import DSLError
from repro.ocl import AccessPattern, AtomicOp


class TestKernelQueries:
    def test_relax_kernel_shape(self):
        k = relax_kernel("relax", "dist", AtomicOp.MIN, read_weights=True)
        assert k.space is IterationSpace.WORKLIST
        assert k.has_neighbor_loop
        assert len(k.pushes) == 1
        assert len(k.uncontended_atomics) == 1
        assert k.irregular_accesses

    def test_walk_covers_nested_ops(self):
        k = relax_kernel("relax", "dist")
        names = [type(op).__name__ for op in k.walk()]
        assert "NeighborLoop" in names
        assert "Push" in names

    def test_inner_ops_of_kind(self):
        k = relax_kernel("relax", "dist")
        assert len(k.inner_ops_of_kind(Push)) == 1
        assert len(k.inner_ops_of_kind(AtomicRMW)) == 1

    def test_topology_kernel_flag_is_contended(self):
        k = topology_kernel("sweep", "x", "x", atomic=AtomicOp.MIN)
        assert k.space is IterationSpace.ALL_NODES
        assert len(k.contended_atomics) == 1

    def test_edge_kernel_has_no_inner_loop(self):
        k = edge_kernel("scan", ["a", "b"], "c", AtomicOp.ADD)
        assert k.space is IterationSpace.ALL_EDGES
        assert not k.has_neighbor_loop


class TestValidation:
    def test_valid_program_passes(self):
        p = fixpoint_program("p", [relax_kernel("k", "x")])
        validate_program(p)

    def test_empty_program_rejected(self):
        with pytest.raises(DSLError):
            validate_program(Program("p", [], []))

    def test_duplicate_kernels_rejected(self):
        k = relax_kernel("k", "x")
        with pytest.raises(DSLError):
            validate_program(Program("p", [k, k], [Invoke("k")]))

    def test_unknown_kernel_in_schedule(self):
        k = relax_kernel("k", "x")
        with pytest.raises(DSLError):
            validate_program(Program("p", [k], [Invoke("missing")]))

    def test_empty_schedule_rejected(self):
        k = relax_kernel("k", "x")
        with pytest.raises(DSLError):
            validate_program(Program("p", [k], []))

    def test_empty_fixpoint_rejected(self):
        k = relax_kernel("k", "x")
        with pytest.raises(DSLError):
            validate_program(Program("p", [k], [Fixpoint([])]))

    def test_unknown_convergence_rejected(self):
        k = relax_kernel("k", "x")
        with pytest.raises(DSLError):
            validate_program(
                Program("p", [k], [Fixpoint([Invoke("k")], convergence="magic")])
            )

    def test_worklist_fixpoint_needs_producer(self):
        # A worklist-space kernel without pushes starves its own loop.
        k = Kernel(
            "consume",
            IterationSpace.WORKLIST,
            ops=[Load("x", AccessPattern.COALESCED)],
        )
        with pytest.raises(DSLError):
            validate_program(Program("p", [k], [Fixpoint([Invoke("consume")])]))

    def test_nested_neighbor_loops_rejected(self):
        k = Kernel(
            "bad",
            IterationSpace.ALL_NODES,
            ops=[NeighborLoop([NeighborLoop([])])],
        )
        with pytest.raises(DSLError):
            validate_kernel(k)

    def test_kernel_name_must_be_identifier(self):
        with pytest.raises(DSLError):
            validate_kernel(Kernel("bad name", IterationSpace.ALL_NODES))
        with pytest.raises(DSLError):
            validate_kernel(Kernel("", IterationSpace.ALL_NODES))

    def test_wg_size_agnostic_required(self):
        k = Kernel(
            "k", IterationSpace.ALL_NODES, ops=[], workgroup_size_agnostic=False
        )
        with pytest.raises(DSLError):
            validate_kernel(k)


class TestProgramStructure:
    def test_uses_worklist(self):
        wl = fixpoint_program("p", [relax_kernel("k", "x")])
        assert wl.uses_worklist
        topo = fixpoint_program(
            "q", [topology_kernel("t", "x", "x")], convergence="flag"
        )
        assert not topo.uses_worklist

    def test_kernel_lookup(self):
        p = fixpoint_program("p", [relax_kernel("k", "x")])
        assert p.kernel("k").name == "k"
        with pytest.raises(KeyError):
            p.kernel("zzz")

    def test_invocations_with_enclosing_fixpoint(self):
        init = Kernel("init", IterationSpace.ALL_NODES, ops=[Store("x")])
        p = fixpoint_program("p", [relax_kernel("k", "x")], init_kernel=init)
        pairs = list(p.invocations())
        assert pairs[0] == (None, Invoke("init"))
        assert pairs[1][0] is not None
        assert pairs[1][1] == Invoke("k")

    def test_phased_program_mixed_schedule(self):
        a = Kernel("a", IterationSpace.ALL_NODES, ops=[Store("x")])
        b = topology_kernel("b", "x", "x")
        p = phased_program("p", [a, ([b], "flag")])
        assert isinstance(p.schedule[0], Invoke)
        assert isinstance(p.schedule[1], Fixpoint)
        assert p.has_fixpoint
