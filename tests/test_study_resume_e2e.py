"""End-to-end kill-and-resume through the real CLI.

Runs ``python -m repro study --scale 0.05 --jobs 2`` in a subprocess,
interrupts it partway via an injected KeyboardInterrupt, re-runs with
``--resume``, and checks the final dataset equals an uninterrupted
run's — the issue's acceptance scenario, exercised exactly as a user
would hit it.
"""

import os
import subprocess
import sys

import pytest

from repro.faults import FaultPlan
from repro.study import PerfDataset

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_study_cli(args, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", "study", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
        **kwargs,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("resume-e2e")


@pytest.fixture(scope="module")
def uninterrupted(workdir):
    """The oracle: one clean run of the same study."""
    out = str(workdir / "base.json")
    result = _run_study_cli(
        [out, "--scale", "0.05", "--jobs", "2", "--no-checkpoint"]
    )
    assert result.returncode == 0, result.stderr
    return PerfDataset.load(out)


class TestKillAndResumeE2E:
    def test_interrupt_then_resume_matches_uninterrupted(
        self, workdir, uninterrupted
    ):
        out = str(workdir / "out.json")
        ckpt = str(workdir / "out.ckpt")
        spool = str(workdir / "faults")
        FaultPlan(spool).arm("interrupt", "shard-0-20")

        interrupted = _run_study_cli(
            [
                out,
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--checkpoint",
                ckpt,
                "--faults",
                spool,
            ]
        )
        assert interrupted.returncode == 130, interrupted.stderr
        assert "re-run with --resume" in interrupted.stderr
        assert not os.path.exists(out), "interrupted run must not write output"
        shards = [n for n in os.listdir(ckpt) if n.startswith("shard-")]
        assert shards, "interrupted run checkpointed nothing"

        resumed = _run_study_cli(
            [
                out,
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--checkpoint",
                ckpt,
                "--resume",
            ]
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming:" in resumed.stderr
        assert PerfDataset.load(out) == uninterrupted
        # The checkpoint is redundant once the dataset is saved.
        assert not os.path.exists(ckpt)

    def test_resume_against_different_scale_is_rejected(self, workdir):
        out = str(workdir / "stale.json")
        ckpt = str(workdir / "stale.ckpt")
        spool = str(workdir / "stale-faults")
        FaultPlan(spool).arm("interrupt", "shard-0-5")
        interrupted = _run_study_cli(
            [
                out,
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--repetitions",
                "1",
                "--checkpoint",
                ckpt,
                "--faults",
                spool,
            ]
        )
        assert interrupted.returncode == 130, interrupted.stderr
        mismatched = _run_study_cli(
            [
                out,
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--repetitions",
                "2",
                "--checkpoint",
                ckpt,
                "--resume",
            ]
        )
        assert mismatched.returncode != 0
        assert "stale checkpoint" in mismatched.stderr
