"""Property-based tests on performance-model invariants.

These pin down the monotonicity and scaling properties the study's
conclusions rest on: more work never costs less, divergence and noise
behave as declared, and pricing is a pure function of its inputs.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chips import all_chips, get_chip
from repro.compiler import BASELINE, OptConfig, compile_program
from repro.dsl import fixpoint_program, relax_kernel
from repro.perfmodel import kernel_time_us, launch_cost, noisy_measurement_us
from repro.runtime.trace import LaunchRecord

CHIP_NAMES = [c.short_name for c in all_chips()]


def _plan(chip_name, config=BASELINE):
    program = fixpoint_program("prop", [relax_kernel("k", "x")])
    return compile_program(program, get_chip(chip_name), config)


def record_strategy():
    return st.builds(
        lambda active, hist, pushes, irr: LaunchRecord(
            kernel="k",
            iteration=0,
            in_fixpoint=True,
            active_items=active,
            expanded_items=min(active, max(1, sum(hist))),
            edges=int(sum(c * 1.5 * 2 ** b for b, c in enumerate(hist))),
            deg_hist=tuple(hist),
            pushes=pushes,
            irregularity=irr,
        ),
        active=st.integers(min_value=1, max_value=100_000),
        hist=st.lists(st.integers(min_value=0, max_value=200), min_size=1, max_size=10),
        pushes=st.integers(min_value=0, max_value=50_000),
        irr=st.floats(min_value=0.0, max_value=1.0),
    )


class TestCostProperties:
    @settings(max_examples=40, deadline=None)
    @given(record_strategy(), st.sampled_from(CHIP_NAMES))
    def test_cost_positive_and_finite(self, record, chip_name):
        plan = _plan(chip_name)
        t = kernel_time_us(plan, plan.kernel_plan("k"), record)
        assert np.isfinite(t)
        assert t > 0

    @settings(max_examples=40, deadline=None)
    @given(record_strategy(), st.sampled_from(CHIP_NAMES))
    def test_pricing_is_pure(self, record, chip_name):
        plan = _plan(chip_name)
        kp = plan.kernel_plan("k")
        assert kernel_time_us(plan, kp, record) == kernel_time_us(plan, kp, record)

    @settings(max_examples=30, deadline=None)
    @given(record_strategy(), st.sampled_from(CHIP_NAMES))
    def test_monotone_in_degree_counts(self, record, chip_name):
        """Doubling every degree-bucket count never reduces cost."""
        plan = _plan(chip_name)
        kp = plan.kernel_plan("k")
        bigger = LaunchRecord(
            kernel=record.kernel,
            iteration=record.iteration,
            in_fixpoint=record.in_fixpoint,
            active_items=record.active_items,
            expanded_items=record.expanded_items,
            edges=record.edges * 2,
            deg_hist=tuple(2 * c for c in record.deg_hist),
            pushes=record.pushes,
            irregularity=record.irregularity,
        )
        assert kernel_time_us(plan, kp, bigger) >= kernel_time_us(
            plan, kp, record
        ) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(record_strategy(), st.sampled_from(CHIP_NAMES))
    def test_monotone_in_irregularity(self, record, chip_name):
        plan = _plan(chip_name)
        kp = plan.kernel_plan("k")
        smooth = LaunchRecord(
            **{**record.__dict__, "irregularity": 0.0}
        )
        assert kernel_time_us(plan, kp, record) >= kernel_time_us(
            plan, kp, smooth
        ) - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(record_strategy(), st.sampled_from(CHIP_NAMES))
    def test_monotone_in_pushes(self, record, chip_name):
        plan = _plan(chip_name)
        kp = plan.kernel_plan("k")
        quiet = LaunchRecord(**{**record.__dict__, "pushes": 0})
        assert kernel_time_us(plan, kp, record) >= kernel_time_us(
            plan, kp, quiet
        ) - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(record_strategy())
    def test_components_sum_to_total(self, record):
        plan = _plan("R9")
        cost = launch_cost(plan, plan.kernel_plan("k"), record)
        assert cost.total_us == pytest.approx(
            cost.scan_us
            + cost.edge_us
            + cost.barrier_us
            + cost.local_us
            + cost.atomic_us
            + cost.fixed_us
        )


class TestNoiseProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=1.0, max_value=1e7),
        st.sampled_from(CHIP_NAMES),
        st.integers(min_value=0, max_value=10),
    )
    def test_noise_positive_and_bounded(self, true_us, chip_name, rep):
        chip = get_chip(chip_name)
        measured = noisy_measurement_us(true_us, chip, "p", "g", "c", rep)
        assert measured > 0
        # Log-normal noise with sigma <= 0.12 stays within ~5 sigma.
        assert measured < true_us * 2.5 + 10.0

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=100.0, max_value=1e6), st.sampled_from(CHIP_NAMES))
    def test_noise_centres_on_truth(self, true_us, chip_name):
        chip = get_chip(chip_name)
        samples = [
            noisy_measurement_us(true_us, chip, "p", "g", "c", rep)
            for rep in range(60)
        ]
        assert np.median(samples) == pytest.approx(true_us, rel=0.12)


class TestConfigProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        record_strategy(),
        st.sampled_from(CHIP_NAMES),
        st.booleans(),
        st.booleans(),
        st.sampled_from([None, 1, 8]),
    )
    def test_all_plans_price_all_records(self, record, chip_name, wg, sg, fg):
        config = OptConfig(wg=wg, sg=sg, fg=fg)
        plan = _plan(chip_name, config)
        t = kernel_time_us(plan, plan.kernel_plan("k"), record)
        assert np.isfinite(t) and t > 0
