"""Tests pinning the workload statistics each application reports.

The performance model is only as honest as the traces feeding it;
these tests check the per-launch counters against hand-computable
expectations on small structured graphs.
"""

import numpy as np
import pytest

from repro.apps import get_application
from repro.graphs import CSRGraph


@pytest.fixture
def star():
    """Hub 0 -> 1..8 plus unit weights."""
    edges = [(0, i) for i in range(1, 9)]
    return CSRGraph.from_edges(9, edges, [1.0] * 8, name="star")


class TestBFSTrace:
    def test_star_pushes_all_leaves_once(self, star):
        trace = get_application("bfs-wl").run(star).trace
        steps = [r for r in trace.launches if r.kernel == "bfs_wl_step"]
        assert steps[0].pushes == 8  # all leaves discovered in round 1
        assert steps[0].edges == 8
        assert sum(r.pushes for r in steps) == 8

    def test_topology_variant_scans_all_nodes(self, star):
        trace = get_application("bfs-topo").run(star).trace
        steps = [r for r in trace.launches if r.kernel == "bfs_topo_step"]
        assert all(r.active_items == star.n_nodes for r in steps)
        assert steps[0].expanded_items == 1  # only the hub has work

    def test_cas_attempts_bounded_by_edges(self, small_rmat):
        trace = get_application("bfs-wl").run(small_rmat).trace
        for r in trace.launches:
            assert r.uncontended_rmws <= r.edges

    def test_degree_histogram_mass_matches_frontier(self, star):
        trace = get_application("bfs-wl").run(star).trace
        first = next(r for r in trace.launches if r.kernel == "bfs_wl_step")
        assert sum(first.deg_hist) == 1  # the hub
        assert first.deg_max == 8


class TestSSSPTrace:
    def test_near_far_launch_count_exceeds_worklist(self, small_road):
        """The near-far pile structure costs extra (cheap) launches."""
        nf = get_application("sssp-nf").run(small_road).trace
        wl = get_application("sssp-wl").run(small_road).trace
        assert nf.n_launches >= wl.n_launches

    def test_relaxations_counted(self, star):
        trace = get_application("sssp-wl").run(star).trace
        first = next(r for r in trace.launches if r.kernel == "sssp_wl_step")
        assert first.uncontended_rmws == 8  # every leaf improves once
        assert first.pushes == 8


class TestPRTrace:
    def test_pull_touches_every_edge_every_iteration(self, small_uniform):
        trace = get_application("pr-topo").run(small_uniform).trace
        for r in trace.launches:
            assert r.edges == small_uniform.n_edges
            assert r.active_items == small_uniform.n_nodes

    def test_push_worklist_shrinks(self, small_uniform):
        trace = get_application("pr-wl").run(small_uniform).trace
        actives = [r.active_items for r in trace.launches]
        # Residual-push activity decays towards convergence.
        assert actives[-1] < actives[0]
        assert actives[0] == small_uniform.n_nodes


class TestMISTrace:
    def test_worklist_monotonically_shrinks(self, small_uniform):
        trace = get_application("mis-wl").run(small_uniform).trace
        actives = [r.active_items for r in trace.launches]
        assert all(b <= a for a, b in zip(actives, actives[1:]))


class TestTriangleTrace:
    def test_edgeiter_active_items_are_edges(self, small_uniform):
        und = small_uniform.symmetrized()
        trace = get_application("tri-edgeiter").run(small_uniform).trace
        (launch,) = trace.launches
        assert launch.active_items == und.n_edges // 2

    def test_merge_work_exceeds_edge_count(self, small_rmat):
        """Intersection cost is super-linear in edges on skewed graphs."""
        und = small_rmat.symmetrized()
        trace = get_application("tri-nodeiter").run(small_rmat).trace
        assert trace.launches[0].edges > 2 * und.n_edges


class TestIrregularitySignals:
    def test_rmat_more_irregular_than_road(self, small_road, small_rmat):
        road = get_application("bfs-wl").run(small_road).trace
        rmat = get_application("bfs-wl").run(small_rmat).trace

        def weighted_irr(trace):
            num = sum(r.irregularity * r.edges for r in trace.launches)
            den = max(1, sum(r.edges for r in trace.launches))
            return num / den

        assert weighted_irr(rmat) > weighted_irr(road)
