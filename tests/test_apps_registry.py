"""Tests for the application registry and cross-cutting app properties."""

import pytest

from repro.apps import (
    APP_NAMES,
    PROBLEMS,
    all_applications,
    applications_by_problem,
    get_application,
    table7_rows,
)
from repro.dsl import validate_program
from repro.errors import ExecutionError, ReproError


class TestRegistry:
    def test_seventeen_applications(self):
        assert len(all_applications()) == 17
        assert len(set(APP_NAMES)) == 17

    def test_seven_problems(self):
        apps = all_applications()
        assert {a.problem for a in apps} == set(PROBLEMS)

    def test_one_fastest_variant_per_problem(self):
        """Table VII marks exactly one (*) per problem."""
        for problem in PROBLEMS:
            variants = applications_by_problem(problem)
            assert sum(1 for a in variants if a.fastest_variant) == 1

    def test_lookup(self):
        assert get_application("bfs-wl").name == "bfs-wl"
        with pytest.raises(ReproError):
            get_application("bfs-quantum")
        with pytest.raises(ReproError):
            applications_by_problem("SORT")

    def test_table7_rows_complete(self):
        rows = table7_rows()
        assert len(rows) == 17
        assert all(r["description"] for r in rows)


class TestAllProgramsValid:
    @pytest.mark.parametrize("name", APP_NAMES)
    def test_program_validates(self, name):
        app = get_application(name)
        validate_program(app.program())

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_program_cached(self, name):
        app = get_application(name)
        assert app.program() is app.program()

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_metadata_present(self, name):
        app = get_application(name)
        assert app.problem in PROBLEMS
        assert app.variant
        assert app.description


class TestWeightRequirements:
    def test_weighted_apps_reject_unweighted_graphs(self):
        from repro.graphs import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 1), (1, 2)])
        for name in ("sssp-wl", "sssp-nf", "sssp-topo", "mst-boruvka"):
            with pytest.raises(ExecutionError):
                get_application(name).run(g)

    def test_unweighted_apps_accept_unweighted_graphs(self):
        from repro.graphs import CSRGraph

        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        result = get_application("bfs-wl").run(g)
        assert result.trace.converged


class TestAllAppsValidateOnStudyClasses:
    """Every application produces oracle-correct results on each of the
    three input classes (small instances)."""

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_validates_on_road(self, name, small_road):
        assert get_application(name).validate(small_road, source=0)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_validates_on_rmat(self, name, small_rmat):
        assert get_application(name).validate(small_rmat, source=1)

    @pytest.mark.parametrize("name", APP_NAMES)
    def test_validates_on_uniform(self, name, small_uniform):
        assert get_application(name).validate(small_uniform, source=5)
