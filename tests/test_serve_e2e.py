"""End-to-end tests for the ``repro index`` / ``repro serve`` CLIs.

These drive real subprocesses through the same entry points an operator
uses: compile the artifact with ``python -m repro index``, boot the
server with ``python -m repro serve --port 0``, parse the advertised
port off stderr, and hammer it with concurrent ``http.client``
connections.  ISSUE 5's acceptance criteria live here: eight clients
must read byte-identical strategy answers that match the offline
``core.strategies`` path, a holed dataset must degrade to the exact
expected lattice level, ``/metrics`` must reconcile with the requests
sent, and SIGTERM/SIGINT must produce a clean exit 0.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.strategies import build_strategies
from repro.serve import StrategyIndex
from repro.study.dataset import PerfDataset, TestCase

GOLDEN_DATASET = "mini-dataset.json.gz"
_ENV = dict(os.environ, PYTHONPATH="src")
_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _run_cli(*argv, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=_ROOT,
        env=_ENV,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class ServerProcess:
    """``python -m repro serve`` wrapped for tests."""

    def __init__(self, index_path: str, *extra: str) -> None:
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                index_path, "--port", "0", "--no-predict", *extra,
            ],
            cwd=_ROOT,
            env=_ENV,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        # The listening line is printed (flushed) before accepting.
        line = self.proc.stderr.readline()
        if "listening on http://" not in line:
            rest = self.proc.stderr.read()
            raise AssertionError(f"server did not start: {line!r} {rest!r}")
        return int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])

    def get(self, target: str):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        try:
            conn.request("GET", target)
            resp = conn.getresponse()
            return resp.status, resp.read()
        finally:
            conn.close()

    def finish(self, sig=signal.SIGTERM, timeout=30):
        """Signal the server and return (exit_code, stderr)."""
        self.proc.send_signal(sig)
        try:
            code = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise
        return code, self.proc.stderr.read()

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self.proc.stdout.close()
        self.proc.stderr.close()


@pytest.fixture(scope="module")
def golden_dataset_path(goldens_dir) -> str:
    return os.path.join(goldens_dir, GOLDEN_DATASET)


@pytest.fixture(scope="module")
def index_path(golden_dataset_path, tmp_path_factory) -> str:
    out = str(tmp_path_factory.mktemp("e2e") / "index.json")
    result = _run_cli("index", golden_dataset_path, out)
    assert result.returncode == 0, result.stderr
    assert "wrote" in result.stdout
    return out


class TestIndexCli:
    def test_index_artifact_loads(self, index_path):
        index = StrategyIndex.load(index_path)
        assert index.coverage.complete
        assert index.n_entries == 49

    def test_index_missing_dataset_fails_cleanly(self, tmp_path):
        result = _run_cli(
            "index", str(tmp_path / "nope.json"), str(tmp_path / "out.json")
        )
        assert result.returncode == 1
        assert "[index]" in result.stderr

    def test_index_refuses_insufficient_coverage(
        self, golden_dataset_path, tmp_path
    ):
        dataset = PerfDataset.load(golden_dataset_path)
        # The expected grid is tests x configurations, so coverage holes
        # are missing config cells: keep the full configuration sweep on
        # one test and only a sliver of it everywhere else (~13%).
        keep_all = dataset.tests[0]
        sliver = {c.key() for c in dataset.configs[:8]}
        holed = PerfDataset()
        for test, config, times in dataset.iter_measurements():
            if test == keep_all or config.key() in sliver:
                holed.add(test, config, times)
        holed_path = str(tmp_path / "holed.json.gz")
        holed.save(holed_path)
        result = _run_cli(
            "index", holed_path, str(tmp_path / "out.json"),
            "--min-coverage", "0.5",
        )
        assert result.returncode == 1
        assert "coverage" in result.stderr

    def test_index_metrics_sidecar(self, golden_dataset_path, tmp_path):
        out = str(tmp_path / "index.json")
        metrics = str(tmp_path / "metrics.json")
        result = _run_cli(
            "index", golden_dataset_path, out, "--metrics", metrics
        )
        assert result.returncode == 0, result.stderr
        with open(metrics) as f:
            report = json.load(f)["report"]
        assert report["counters"]["index.entries"] == 49
        assert report["meta"]["output"] == out


class TestServeE2E:
    def test_concurrent_clients_match_offline_strategies(
        self, index_path, golden_dataset_path
    ):
        """Eight concurrent clients all read byte-identical answers, and
        every served config equals the offline core.strategies path."""
        dataset = PerfDataset.load(golden_dataset_path)
        strategies = build_strategies(dataset)
        server = ServerProcess(index_path)
        try:
            # Byte-identical fan-out on a single query.
            target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(
                    pool.map(lambda _: server.get(target), range(8))
                )
            assert all(status == 200 for status, _ in results)
            assert len({body for _, body in results}) == 1

            # Offline equivalence across every test case.
            for test in dataset.tests:
                status, body = server.get(
                    f"/v1/strategy?chip={test.chip}&app={test.app}"
                    f"&input={test.graph}"
                )
                assert status == 200
                answer = json.loads(body)
                offline = strategies["chip+app+input"].config_for(test).key()
                assert answer["config"] == offline, test
                assert not answer["degraded"]
            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_holed_dataset_serves_degraded_answers(
        self, golden_dataset_path, tmp_path
    ):
        """Drop the (MALI, bfs-wl) slice: queries for it must fall back
        to the chip+input strategy and say so."""
        dataset = PerfDataset.load(golden_dataset_path)
        # Drop the whole (MALI, bfs-wl) slice so its lattice partitions
        # vanish, and half the configs of one unrelated test so the
        # audited coverage record is visibly incomplete in /healthz.
        punctured = TestCase("pr-topo", "tiny-rmat", "R9")
        half = {c.key() for c in dataset.configs[::2]}
        holed = PerfDataset()
        for test, config, times in dataset.iter_measurements():
            if test.chip == "MALI" and test.app == "bfs-wl":
                continue
            if test == punctured and config.key() not in half:
                continue
            holed.add(test, config, times)
        holed_path = str(tmp_path / "holed.json.gz")
        holed.save(holed_path)
        index_out = str(tmp_path / "index.json")
        result = _run_cli("index", holed_path, index_out)
        assert result.returncode == 0, result.stderr

        server = ServerProcess(index_out)
        try:
            status, body = server.get(
                "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
            )
            assert status == 200
            answer = json.loads(body)
            assert answer["degraded"]
            assert answer["requested_level"] == "chip+app+input"
            assert answer["served_level"] == "chip+input"
            assert "fell back" in answer["note"]

            # Untouched coordinates still serve exact answers.
            status, body = server.get(
                "/v1/strategy?chip=GTX1080&app=pr-topo&input=tiny-rmat"
            )
            assert status == 200
            assert not json.loads(body)["degraded"]

            status, body = server.get("/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert "missing" in health["coverage"]
            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0

    def test_metrics_reconcile_and_sidecar_written(self, index_path, tmp_path):
        metrics_path = str(tmp_path / "serve-metrics.json")
        server = ServerProcess(index_path, "--metrics", metrics_path)
        try:
            for _ in range(3):
                status, _ = server.get("/v1/strategy?chip=R9&app=cc-topo")
                assert status == 200
            status, body = server.get("/metrics")
            assert status == 200
            metrics = json.loads(body)
            counters = metrics["counters"]
            # 3 strategy requests + the /metrics request observing itself.
            assert counters["serve.requests"] == 4
            assert counters["serve.requests.strategy"] == 3
            # cc-topo is not a dataset app, so the key misses the
            # precompiled table and goes through the TTL cache instead.
            assert counters["serve.cache.misses"] == 1
            assert counters["serve.cache.hits"] == 2
            # Fallbacks count every degraded response served, cache hit
            # or not — three requests, three degraded answers.
            assert counters["serve.fallbacks"] == 3
            assert metrics["cache"]["size"] == 1
            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0
        assert "4 requests served" in stderr
        with open(metrics_path) as f:
            report = json.load(f)["report"]
        assert report["counters"]["serve.requests"] == 4
        assert report["counters"]["serve.responses.2xx"] == 4
        assert report["meta"]["requests"] == 4

    def test_sigint_also_exits_cleanly(self, index_path):
        server = ServerProcess(index_path)
        try:
            status, _ = server.get("/healthz")
            assert status == 200
            code, stderr = server.finish(sig=signal.SIGINT)
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_serve_missing_index_fails_cleanly(self, tmp_path):
        result = _run_cli("serve", str(tmp_path / "nope.json"))
        assert result.returncode == 1
        assert "[serve]" in result.stderr
