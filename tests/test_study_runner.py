"""Tests for the study sweep runner (uses the mini study fixture)."""

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import BASELINE, OptConfig
from repro.study import StudyConfig, TestCase, collect_traces, run_study


class TestMiniStudy:
    def test_factorial_coverage(self, mini_dataset, mini_study_config):
        cfg = mini_study_config
        expected_tests = len(cfg.apps) * len(cfg.inputs) * len(cfg.chips)
        assert len(mini_dataset) == expected_tests
        assert mini_dataset.n_measurements == expected_tests * len(cfg.configs)

    def test_three_repetitions(self, mini_dataset):
        for test, config, times in mini_dataset.iter_measurements():
            assert len(times) == 3
            assert all(t > 0 for t in times)

    def test_axes_populated(self, mini_dataset):
        assert set(mini_dataset.chips) == {"GTX1080", "R9", "MALI"}
        assert set(mini_dataset.apps) == {"bfs-wl", "sssp-nf", "pr-topo"}
        assert set(mini_dataset.graphs) == {"tiny-road", "tiny-rmat"}

    def test_deterministic(self, mini_dataset, mini_study_config):
        again = run_study(mini_study_config)
        test = TestCase("bfs-wl", "tiny-road", "R9")
        for config in (BASELINE, OptConfig(sg=True, fg=8)):
            assert again.times(test, config) == mini_dataset.times(test, config)

    def test_progress_callback_invoked(self, mini_study_config):
        messages = []
        collect_traces(mini_study_config, progress=messages.append)
        assert len(messages) == 6  # 3 apps x 2 inputs
        assert all("tracing" in m for m in messages)


class TestStudyConfig:
    def test_defaults_match_paper_scope(self):
        cfg = StudyConfig()
        assert len(cfg.apps) == 17
        assert len(cfg.inputs) == 3
        assert len(cfg.chips) == 6
        assert len(cfg.configs) == 96
        assert cfg.repetitions == 3

    def test_weighted_apps_skipped_on_unweighted_input(self):
        from repro.graphs import CSRGraph
        from repro.graphs.inputs import StudyInput

        unweighted = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        cfg = StudyConfig(
            apps=[get_application("sssp-nf"), get_application("bfs-wl")],
            inputs={
                "uw": StudyInput(
                    name="uw",
                    input_class="random",
                    description="unweighted",
                    _builder=lambda: unweighted,
                )
            },
            chips=[get_chip("R9")],
            configs=[BASELINE],
        )
        traces = collect_traces(cfg)
        assert ("bfs-wl", "uw") in traces
        assert ("sssp-nf", "uw") not in traces


class TestPlausiblePhysics:
    """Sanity constraints tying the dataset to the chip models."""

    def test_mali_slowest_chip(self, mini_dataset):
        test_fast = TestCase("bfs-wl", "tiny-road", "GTX1080")
        test_slow = TestCase("bfs-wl", "tiny-road", "MALI")
        assert mini_dataset.median(test_slow, BASELINE) > mini_dataset.median(
            test_fast, BASELINE
        )

    def test_oitergb_helps_mali_road(self, mini_dataset):
        test = TestCase("sssp-nf", "tiny-road", "MALI")
        base = mini_dataset.median(test, BASELINE)
        outlined = mini_dataset.median(test, OptConfig(oitergb=True))
        assert outlined < base

    def test_oitergb_hurts_nvidia_road(self, mini_dataset):
        test = TestCase("sssp-nf", "tiny-road", "GTX1080")
        base = mini_dataset.median(test, BASELINE)
        outlined = mini_dataset.median(test, OptConfig(oitergb=True))
        assert outlined > base

    def test_fg8_helps_rmat(self, mini_dataset):
        test = TestCase("bfs-wl", "tiny-rmat", "GTX1080")
        base = mini_dataset.median(test, BASELINE)
        fg8 = mini_dataset.median(test, OptConfig(fg=8))
        assert fg8 < base
