"""Tests for the sample-efficiency analysis (Section IX future work)."""

import pytest

from repro.compiler import BASELINE, enumerate_configs
from repro.core import Analysis
from repro.core.sampling import (
    decision_agreement,
    restrict_dataset,
    sample_efficiency_curve,
    subsample_configs,
)
from repro.errors import AnalysisError

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, Analysis(ds)


class TestSubsample:
    def test_includes_baseline(self):
        configs = subsample_configs(10, seed=1)
        assert BASELINE in configs
        assert len(configs) == 10

    def test_no_duplicates(self):
        configs = subsample_configs(40, seed=2)
        assert len({c.key() for c in configs}) == 40

    def test_deterministic_per_seed(self):
        assert subsample_configs(20, seed=5) == subsample_configs(20, seed=5)
        assert subsample_configs(20, seed=5) != subsample_configs(20, seed=6)

    def test_full_size_returns_whole_space(self):
        configs = subsample_configs(96, seed=0)
        assert {c.key() for c in configs} == {
            c.key() for c in enumerate_configs()
        }

    def test_rejects_bad_sizes(self):
        with pytest.raises(AnalysisError):
            subsample_configs(0)
        with pytest.raises(AnalysisError):
            subsample_configs(97)


class TestRestrictDataset:
    def test_keeps_only_requested_configs(self, designed):
        ds, _ = designed
        configs = subsample_configs(12, seed=3)
        sub = restrict_dataset(ds, configs)
        assert len(sub.configs) == 12
        assert len(sub) == len(ds)  # all tests survive

    def test_times_preserved(self, designed):
        ds, _ = designed
        configs = subsample_configs(12, seed=3)
        sub = restrict_dataset(ds, configs)
        test = ds.tests[0]
        for config in configs:
            assert sub.times(test, config) == ds.times(test, config)


class TestAgreement:
    def test_identical_decisions_agree_fully(self, designed):
        ds, analysis = designed
        decisions = analysis.opts_for_partition(ds.tests)
        assert decision_agreement(decisions, decisions) == 1.0

    def test_full_sample_agrees_fully(self, designed):
        ds, analysis = designed
        points = sample_efficiency_curve(
            ds, sizes=(96,), trials=1, dims=(), analysis=analysis
        )
        assert points[0].mean_agreement == 1.0

    def test_agreement_generally_improves_with_samples(self, designed):
        ds, analysis = designed
        points = sample_efficiency_curve(
            ds, sizes=(6, 96), trials=2, dims=(), analysis=analysis
        )
        assert points[-1].mean_agreement >= points[0].mean_agreement

    def test_points_well_formed(self, designed):
        ds, analysis = designed
        points = sample_efficiency_curve(
            ds, sizes=(8, 16), trials=2, dims=("chip",), analysis=analysis
        )
        assert [p.n_configs for p in points] == [8, 16]
        for p in points:
            assert 0.0 <= p.min_agreement <= p.mean_agreement <= 1.0
            assert p.n_trials == 2
