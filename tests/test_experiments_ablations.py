"""Tests for the ablation experiment modules on designed data."""

import pytest

from repro.core import Analysis
from repro.experiments import ablation_methodology, ablation_sampling

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, Analysis(ds)


class TestAblationSampling:
    def test_data_points(self, designed):
        ds, an = designed
        points = ablation_sampling.data(ds, an, sizes=(16, 96), trials=1)
        assert [p.n_configs for p in points] == [16, 96]
        assert points[-1].mean_agreement == 1.0

    def test_run_renders(self, designed):
        ds, an = designed
        out = ablation_sampling.run(ds, an)
        assert "agreement" in out.lower()
        assert "96" in out


class TestAblationMethodology:
    def test_data_shapes(self, designed):
        ds, an = designed
        comparisons, confidences = ablation_methodology.data(ds, an)
        assert len(comparisons) == len(ds.chips) * 7
        assert {p.confidence for p in confidences} == {0.80, 0.90, 0.95, 0.99}

    def test_run_renders(self, designed):
        ds, an = designed
        out = ablation_methodology.run(ds, an)
        assert "Rank" in out and "CI confidence" in out

    def test_designed_effects_agree_across_rules(self, designed):
        """Clean effects leave few rank/magnitude divergences."""
        ds, an = designed
        comparisons, _ = ablation_methodology.data(ds, an)
        divergent = [c for c in comparisons if c.diverges]
        assert len(divergent) <= len(comparisons) // 4


class TestReportUsesEnvDataset:
    def test_dataset_experiment_via_cli(self, monkeypatch, tmp_path, capsys):
        """The report CLI must run dataset experiments against
        $REPRO_DATASET without triggering a full study."""
        from repro.__main__ import main
        from repro.experiments import common

        common.reset_cache()
        ds = build_synthetic_dataset(apps=("a1",), graphs=("g1",))
        path = str(tmp_path / "ds.json.gz")
        ds.save(path)
        monkeypatch.setenv("REPRO_DATASET", path)
        try:
            assert main(["report", "fig1"]) == 0
            out = capsys.readouterr().out
            assert "C1" in out and "C2" in out
        finally:
            common.reset_cache()
