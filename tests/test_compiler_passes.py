"""Tests for the individual compiler passes."""

import pytest

from repro.chips import get_chip
from repro.compiler import OptConfig, compile_program
from repro.compiler.passes.coop_cv import apply_coop_cv
from repro.compiler.passes.nested_parallelism import apply_nested_parallelism
from repro.compiler.passes.workgroup_size import apply_workgroup_size
from repro.compiler.plan import KernelPlan
from repro.dsl import IterationSpace, Kernel, Store, fixpoint_program, relax_kernel, topology_kernel
from repro.errors import InvalidConfigError


def make_plan(kernel, chip, wg_size=128):
    return KernelPlan(kernel=kernel, wg_size=wg_size, sg_size=chip.sg_size)


class TestWorkgroupSizePass:
    def test_sets_size(self):
        chip = get_chip("R9")
        plan = make_plan(relax_kernel("k", "x"), chip)
        out = apply_workgroup_size(plan, chip, OptConfig(wg_size=256))
        assert out.wg_size == 256
        assert any("sz256" in n for n in out.notes)

    def test_rejects_unsupported_size(self):
        chip = get_chip("R9").with_overrides(max_wg_size=128)
        plan = make_plan(relax_kernel("k", "x"), chip)
        with pytest.raises(InvalidConfigError):
            apply_workgroup_size(plan, chip, OptConfig(wg_size=256))

    def test_default_size_no_note(self):
        chip = get_chip("R9")
        out = apply_workgroup_size(
            make_plan(relax_kernel("k", "x"), chip), chip, OptConfig()
        )
        assert out.wg_size == 128
        assert not out.notes


class TestCoopCvPass:
    def test_noop_when_disabled(self):
        chip = get_chip("IRIS")
        plan = make_plan(relax_kernel("k", "x"), chip)
        assert apply_coop_cv(plan, chip, OptConfig()) == plan

    def test_applies_to_push_kernel(self):
        chip = get_chip("IRIS")
        plan = make_plan(relax_kernel("k", "x"), chip)
        out = apply_coop_cv(plan, chip, OptConfig(coop_cv=True))
        assert out.coop_scope == "subgroup"
        assert out.local_mem_bytes > 0
        assert out.sg_barriers_per_chunk >= 2.0

    def test_skips_kernel_without_targets(self):
        chip = get_chip("IRIS")
        kernel = Kernel("k", IterationSpace.ALL_NODES, ops=[Store("x")])
        out = apply_coop_cv(make_plan(kernel, chip), chip, OptConfig(coop_cv=True))
        assert out.coop_scope is None
        assert any("not applied" in n for n in out.notes)

    def test_predication_depends_on_lockstep(self):
        push_kernel = relax_kernel("k", "x")
        iris = get_chip("IRIS")  # non-lockstep
        r9 = get_chip("R9")  # lockstep
        out_iris = apply_coop_cv(
            make_plan(push_kernel, iris), iris, OptConfig(coop_cv=True)
        )
        out_r9 = apply_coop_cv(
            make_plan(push_kernel, r9), r9, OptConfig(coop_cv=True)
        )
        assert out_iris.predication_overhead > out_r9.predication_overhead > 0


class TestNestedParallelismPass:
    def test_noop_without_np_flags(self):
        chip = get_chip("R9")
        plan = make_plan(relax_kernel("k", "x"), chip)
        assert apply_nested_parallelism(plan, chip, OptConfig()) == plan

    def test_skips_kernel_without_inner_loop(self):
        chip = get_chip("R9")
        kernel = Kernel("k", IterationSpace.ALL_NODES, ops=[Store("x")])
        out = apply_nested_parallelism(
            make_plan(kernel, chip), chip, OptConfig(wg=True, sg=True, fg=8)
        )
        assert not out.wg_scheme and not out.sg_scheme and out.fg_edges is None

    def test_all_schemes_compose(self):
        chip = get_chip("R9")
        plan = make_plan(relax_kernel("k", "x"), chip)
        out = apply_nested_parallelism(
            plan, chip, OptConfig(wg=True, sg=True, fg=8)
        )
        assert out.wg_scheme and out.sg_scheme and out.fg_edges == 8
        assert out.wg_threshold == 128
        assert out.sg_threshold == 64
        assert out.leader_election_atomics
        assert out.local_mem_bytes > 0

    def test_fg_variants(self):
        chip = get_chip("R9")
        plan = make_plan(relax_kernel("k", "x"), chip)
        assert apply_nested_parallelism(plan, chip, OptConfig(fg=1)).fg_edges == 1
        assert apply_nested_parallelism(plan, chip, OptConfig(fg=8)).fg_edges == 8

    def test_sg_scheme_relieves_divergence_wg_alone_does_not(self):
        chip = get_chip("MALI")
        plan = make_plan(relax_kernel("k", "x"), chip)
        sg_out = apply_nested_parallelism(plan, chip, OptConfig(sg=True))
        wg_out = apply_nested_parallelism(plan, chip, OptConfig(wg=True))
        assert sg_out.inserts_inner_barriers
        assert not wg_out.inserts_inner_barriers


class TestPlanAccounting:
    def test_local_memory_accumulates_across_passes(self):
        chip = get_chip("IRIS")
        program = fixpoint_program("p", [relax_kernel("k", "x")])
        lean = compile_program(program, chip, OptConfig(sg=True))
        fat = compile_program(program, chip, OptConfig(sg=True, coop_cv=True, fg=8))
        assert (
            fat.kernel_plan("k").local_mem_bytes
            > lean.kernel_plan("k").local_mem_bytes
        )

    def test_notes_record_transformations(self):
        chip = get_chip("R9")
        program = fixpoint_program("p", [relax_kernel("k", "x")])
        plan = compile_program(
            program, chip, OptConfig(coop_cv=True, sg=True, fg=8, wg_size=256)
        )
        notes = "\n".join(plan.kernel_plan("k").notes)
        assert "sz256" in notes
        assert "np/sg" in notes
        assert "np/fg" in notes
        assert "coop-cv" in notes

    def test_describe_mentions_outlining(self):
        chip = get_chip("R9")
        program = fixpoint_program("p", [relax_kernel("k", "x")])
        plan = compile_program(program, chip, OptConfig(oitergb=True))
        assert "outlined: True" in plan.describe()
