"""Unit tests for the serving layer's overload protection.

:class:`~repro.serve.admission.AdmissionController` (per-endpoint-class
shedding watermarks with brownout ordering) and
:class:`~repro.serve.admission.CircuitBreaker` (failure bursts into
fast-fail with half-open probing) are pure bookkeeping objects with
injectable clocks, so every state transition is tested in fake time.
The server-integration behaviour (429 + Retry-After on the wire) lives
in ``test_serve_server.py`` / ``test_serve_reload.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import ServeError
from repro.serve.admission import (
    LOOKUP,
    PREDICT,
    AdmissionController,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestAdmissionController:
    def test_disabled_by_default_admits_everything(self):
        adm = AdmissionController()
        assert not adm.enabled
        for _ in range(10_000):
            assert adm.try_acquire(LOOKUP)
            assert adm.try_acquire(PREDICT)
        assert adm.stats()["shed"] == {PREDICT: 0, LOOKUP: 0}

    def test_depth_watermark_sheds_at_the_bound(self):
        adm = AdmissionController(lookup_depth=4, predict_depth=2)
        assert adm.enabled
        assert adm.try_acquire(PREDICT)
        assert adm.try_acquire(PREDICT)
        assert not adm.try_acquire(PREDICT)  # 2 pending = watermark
        assert adm.try_acquire(LOOKUP)  # lookups unaffected
        adm.release(PREDICT, latency_ms=1.0)
        assert adm.try_acquire(PREDICT)  # freed one slot
        assert adm.shed[PREDICT] == 1

    def test_predict_depth_defaults_to_half_the_lookup_depth(self):
        adm = AdmissionController(lookup_depth=8)
        assert adm.predict_depth == 4
        # Even a lookup depth of 1 leaves predict one slot, not zero
        # (zero would mean "unbounded", inverting the brownout).
        assert AdmissionController(lookup_depth=1).predict_depth == 1

    def test_predict_depth_may_not_exceed_lookup_depth(self):
        with pytest.raises(ServeError):
            AdmissionController(lookup_depth=2, predict_depth=3)
        with pytest.raises(ServeError):
            AdmissionController(lookup_depth=-1)

    def test_brownout_ordering_under_depth_pressure(self):
        """Filling the fleet to the predict watermark sheds predict
        while lookups keep serving — the expensive endpoint browns out
        first."""
        adm = AdmissionController(lookup_depth=4)
        for _ in range(adm.predict_depth):
            assert adm.try_acquire(PREDICT)
        assert not adm.try_acquire(PREDICT)
        for _ in range(4):
            assert adm.try_acquire(LOOKUP)
        assert not adm.try_acquire(LOOKUP)

    def test_latency_watermark_sheds_predict_at_1x_lookup_at_2x(self):
        adm = AdmissionController(latency_watermark_ms=10.0)
        # Drive the EWMA to ~15ms: above 1x (predict) but below 2x.
        for _ in range(60):
            assert adm.try_acquire(LOOKUP)
            adm.release(LOOKUP, latency_ms=15.0)
        assert not adm.try_acquire(PREDICT)
        assert adm.try_acquire(LOOKUP)
        adm.release(LOOKUP, latency_ms=15.0)
        # Past 2x everything sheds.
        for _ in range(60):
            assert adm.try_acquire(LOOKUP) or True
            adm.release(LOOKUP, latency_ms=25.0)
        assert not adm.try_acquire(LOOKUP)
        assert not adm.try_acquire(PREDICT)

    def test_retry_after_estimates_drain_and_clamps(self):
        adm = AdmissionController(lookup_depth=100, max_concurrency=1)
        assert adm.retry_after() == 1  # nothing pending: floor
        for _ in range(50):
            adm.try_acquire(LOOKUP)
            adm.release(LOOKUP, latency_ms=2000.0)
        for _ in range(50):
            adm.try_acquire(LOOKUP)
        # 50 pending x ~2s each through 1 slot: far past the ceiling.
        assert adm.retry_after() == 30

    def test_stats_snapshot_shape(self):
        adm = AdmissionController(lookup_depth=1)
        adm.try_acquire(LOOKUP)
        assert not adm.try_acquire(LOOKUP)
        stats = adm.stats()
        assert stats["enabled"] is True
        assert stats["pending"] == {PREDICT: 0, LOOKUP: 1}
        assert stats["shed"] == {PREDICT: 0, LOOKUP: 1}
        assert "latency_ewma_ms" in stats


class TestCircuitBreaker:
    def test_disabled_by_default(self):
        breaker = CircuitBreaker()
        assert not breaker.enabled
        for _ in range(100):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_success()  # resets the consecutive count
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # second concurrent request refused
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_full_timeout(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened == 2
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_retry_after_counts_down_while_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.retry_after() == 10
        clock.advance(6.5)
        assert breaker.retry_after() == 4
        clock.advance(10.0)
        assert breaker.retry_after() == 1  # floor once due

    def test_abandon_probe_releases_the_half_open_latch(self):
        """A probe that dies without an outcome (validation failure,
        cancellation) must not latch half-open forever: abandoning it
        lets the next request become the new probe."""
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # latched while it is in flight
        breaker.abandon_probe()  # probe died without an outcome
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the next request probes instead
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_abandon_probe_is_a_noop_outside_half_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        breaker.abandon_probe()  # closed: nothing to release
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        breaker.abandon_probe()  # open: nothing to release
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        CircuitBreaker().abandon_probe()  # disabled: ignored

    def test_adjudicated_probe_is_not_reopened_by_abandon(self):
        """``abandon_probe`` after a recorded outcome changes nothing —
        the server calls it unconditionally from a ``finally``."""
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_timeout=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        breaker.abandon_probe()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()  # threshold 1: re-opens
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # failed probe
        breaker.abandon_probe()
        assert breaker.state == CircuitBreaker.OPEN

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ServeError):
            CircuitBreaker(threshold=-1)
        with pytest.raises(ServeError):
            CircuitBreaker(threshold=1, reset_timeout=0.0)

    def test_stats_snapshot_shape(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        stats = breaker.stats()
        assert stats == {
            "enabled": True,
            "state": "closed",
            "consecutive_failures": 1,
            "opened": 0,
            "fast_fails": 0,
        }
