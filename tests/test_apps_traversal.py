"""Tests for the traversal applications: BFS and SSSP variants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.graphs import CSRGraph, bfs_levels, rmat_graph, uniform_random_graph
from repro.apps.sssp import dijkstra_reference

BFS_VARIANTS = ["bfs-topo", "bfs-wl", "bfs-wlc", "bfs-hybrid"]
SSSP_VARIANTS = ["sssp-topo", "sssp-wl", "sssp-nf"]


def random_weighted_graph(n, m, seed):
    rng = np.random.default_rng(seed)
    edges = np.column_stack(
        [rng.integers(0, n, size=m), rng.integers(0, n, size=m)]
    )
    weights = rng.integers(1, 50, size=m).astype(np.float64)
    return CSRGraph.from_edges(n, edges, weights, name=f"rand-{seed}")


class TestBFS:
    @pytest.mark.parametrize("name", BFS_VARIANTS)
    def test_line_levels(self, name, line_graph):
        app = get_application(name)
        result = app.run(line_graph)
        levels = app.extract_result(result.state, line_graph)
        assert levels.tolist() == [0, 1, 2, 3, 4]

    @pytest.mark.parametrize("name", BFS_VARIANTS)
    def test_unreachable_nodes(self, name, disconnected_graph):
        app = get_application(name)
        result = app.run(disconnected_graph, source=0)
        levels = app.extract_result(result.state, disconnected_graph)
        assert levels[3] == -1 and levels[4] == -1

    @pytest.mark.parametrize("name", BFS_VARIANTS)
    def test_single_node_source_component(self, name):
        g = CSRGraph.from_edges(3, [(1, 2)])
        app = get_application(name)
        result = app.run(g, source=0)
        levels = app.extract_result(result.state, g)
        assert levels.tolist() == [0, -1, -1]

    def test_variants_agree(self, small_rmat):
        results = {}
        for name in BFS_VARIANTS:
            app = get_application(name)
            res = app.run(small_rmat, source=2)
            results[name] = app.extract_result(res.state, small_rmat)
        base = results[BFS_VARIANTS[0]]
        for name in BFS_VARIANTS[1:]:
            assert np.array_equal(results[name], base)

    def test_iterations_match_depth(self, line_graph):
        app = get_application("bfs-wl")
        trace = app.run(line_graph).trace
        # 4 productive levels plus one empty-check iteration at most.
        assert 4 <= trace.n_fixpoint_iterations <= 5

    def test_hybrid_switches_to_dense_mode(self, small_rmat):
        app = get_application("bfs-hybrid")
        trace = app.run(small_rmat, source=2).trace
        actives = [
            r.active_items for r in trace.launches if r.kernel == "bfs_hybrid_step"
        ]
        # At least one dense sweep (active == n) and one sparse step.
        assert any(a == small_rmat.n_nodes for a in actives)
        assert any(a < small_rmat.n_nodes for a in actives)

    def test_wlc_reports_no_cas(self, small_road):
        cas = get_application("bfs-wl").run(small_road).trace
        racy = get_application("bfs-wlc").run(small_road).trace
        assert sum(r.uncontended_rmws for r in cas.launches) > 0
        assert sum(r.uncontended_rmws for r in racy.launches) == 0

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_bfs_matches_oracle_on_random_graphs(self, seed):
        g = uniform_random_graph(60, 3.0, seed=seed % 1000)
        app = get_application("bfs-wl")
        res = app.run(g, source=0)
        assert np.array_equal(
            app.extract_result(res.state, g), bfs_levels(g, 0)
        )


class TestSSSP:
    @pytest.mark.parametrize("name", SSSP_VARIANTS)
    def test_line_distances(self, name, line_graph):
        app = get_application(name)
        res = app.run(line_graph)
        dist = app.extract_result(res.state, line_graph)
        assert dist.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    @pytest.mark.parametrize("name", SSSP_VARIANTS)
    def test_unreachable_is_inf(self, name, disconnected_graph):
        app = get_application(name)
        res = app.run(disconnected_graph, source=0)
        dist = app.extract_result(res.state, disconnected_graph)
        assert np.isinf(dist[3]) and np.isinf(dist[4])

    @pytest.mark.parametrize("name", SSSP_VARIANTS)
    def test_prefers_cheap_long_path(self, name):
        # Direct edge weight 10; two-hop path weight 3.
        g = CSRGraph.from_edges(
            3, [(0, 2), (0, 1), (1, 2)], [10.0, 1.0, 2.0]
        )
        app = get_application(name)
        res = app.run(g)
        assert app.extract_result(res.state, g)[2] == 3.0

    def test_variants_agree(self, small_road):
        results = {}
        for name in SSSP_VARIANTS:
            app = get_application(name)
            res = app.run(small_road, source=7)
            results[name] = app.extract_result(res.state, small_road)
        base = results[SSSP_VARIANTS[0]]
        for name in SSSP_VARIANTS[1:]:
            assert np.allclose(results[name], base, equal_nan=False)

    def test_near_far_does_less_work_than_worklist(self, small_road):
        wl = get_application("sssp-wl").run(small_road).trace
        nf = get_application("sssp-nf").run(small_road).trace
        assert nf.total_edges <= wl.total_edges

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_sssp_matches_dijkstra_on_random_graphs(self, seed):
        g = random_weighted_graph(50, 200, seed % 997).deduplicated()
        app = get_application("sssp-nf")
        res = app.run(g, source=0)
        computed = app.extract_result(res.state, g)
        expected = dijkstra_reference(g, 0)
        both_inf = np.isinf(computed) & np.isinf(expected)
        assert np.all(both_inf | np.isclose(computed, expected))
