"""Tests for the portability analyses (Fig 1, Fig 2, Table II)."""

import pytest

from repro.core import (
    cross_chip_heatmap,
    max_geomean_speedup,
    performance_envelope,
    top_speedup_opts,
)

from .synthetic import build_synthetic_dataset


def chip_conditional_effects(opt, test):
    """fg8 helps C1 and hurts C2; sg helps everywhere."""
    if opt == "sg":
        return 0.8
    if opt == "fg8":
        return 0.5 if test.chip == "C1" else 1.5
    if opt == "wg":
        return 1.25
    return 1.0


@pytest.fixture(scope="module")
def designed():
    return build_synthetic_dataset(effects=chip_conditional_effects)


class TestHeatmap:
    def test_diagonal_is_one(self, designed):
        chips, heat = cross_chip_heatmap(designed)
        for chip in chips:
            assert heat[(chip, chip)] == pytest.approx(1.0)

    def test_porting_harmful_settings_shows_up(self, designed):
        chips, heat = cross_chip_heatmap(designed)
        # C1's optimal configs include fg8, which hurts C2 badly.
        assert heat[("C2", "C1")] > 1.5
        # C2's optimal configs lack fg8; on C1 that forgoes a 2x win.
        assert heat[("C1", "C2")] > 1.5

    def test_off_diagonals_at_least_one(self, designed):
        chips, heat = cross_chip_heatmap(designed)
        assert all(v >= 1.0 - 1e-6 for v in heat.values())


class TestEnvelope:
    def test_extremes_match_design(self, designed):
        env = performance_envelope(designed)
        best_c1, worst_c1 = env["C1"]
        # Best on C1: sg (0.8) x fg8 (0.5) => 2.5x speedup.
        assert best_c1.factor == pytest.approx(2.5, rel=0.05)
        assert best_c1.config.has("fg8")
        best_c2, worst_c2 = env["C2"]
        # Worst on C2: wg (1.25) x fg8 (1.5) => 1.875x slowdown.
        assert worst_c2.factor == pytest.approx(1.875, rel=0.05)

    def test_envelope_entries_significant_only(self, designed):
        env = performance_envelope(designed)
        for chip, (best, worst) in env.items():
            assert best.factor >= 1.0
            assert worst.factor >= 1.0

    def test_degenerate_dataset_yields_unit_envelope(self):
        flat = build_synthetic_dataset(effects=lambda o, t: 1.0, jitter=0.0)
        env = performance_envelope(flat)
        for chip, (best, worst) in env.items():
            assert best.factor == 1.0
            assert worst.factor == 1.0


class TestTopOpts:
    def test_counts_reflect_designed_effects(self, designed):
        counts = top_speedup_opts(designed)
        # Every C1 oracle config should contain sg and fg8.
        n_c1 = len(designed.tests_where(chip="C1"))
        assert counts["C1"]["fg8"] == n_c1
        assert counts["C1"]["sg"] == n_c1
        # fg8 never appears in C2 oracle configs.
        assert counts["C2"]["fg8"] == 0
        # wg is pure harm: never in any oracle config.
        assert counts["C1"]["wg"] == 0
        assert counts["C2"]["wg"] == 0


class TestMaxGeomeanSpeedup:
    def test_matches_designed_oracle(self, designed):
        # C1 oracle: 2.5x; C2 oracle: 1.25x (sg only).
        expected = (2.5 * 1.25) ** 0.5
        assert max_geomean_speedup(designed) == pytest.approx(expected, rel=0.05)
