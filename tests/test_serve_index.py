"""Tests for the precompiled strategy index and its degradation lattice.

The fallback-chain tests are the contract of ISSUE 5's serving layer:
for every way the most-specialised cell can be absent — never measured,
subsetted away, or quarantined by the audit — the lookup must land on
the exact expected lattice level and mark the answer ``degraded``.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.core.strategies import build_strategies
from repro.errors import StrategyIndexError
from repro.serve import StrategyIndex, build_index
from repro.serve.index import INDEX_FORMAT, fallback_chain, level_name
from repro.study.audit import audit_dataset
from repro.study.dataset import PerfDataset, TestCase

GOLDEN_DATASET = "mini-dataset.json.gz"
GOLDEN_INDEX = "strategy-index.json"


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def index(golden_dataset) -> StrategyIndex:
    return build_index(golden_dataset)


class TestLattice:
    def test_level_name_canonicalises_order(self):
        assert level_name(()) == "global"
        assert level_name(("app", "chip")) == "chip+app"
        assert level_name(("input", "app", "chip")) == "chip+app+input"

    def test_level_name_rejects_unknown_dimension(self):
        with pytest.raises(StrategyIndexError, match="unknown specialisation"):
            level_name(("vendor",))

    def test_fallback_chain_most_specialised_first(self):
        assert fallback_chain(("chip", "app", "input")) == [
            "chip+app+input",
            "chip+app",
            "chip+input",
            "app+input",
            "chip",
            "app",
            "input",
            "global",
            "baseline",
        ]
        assert fallback_chain(("chip",)) == ["chip", "global", "baseline"]
        assert fallback_chain(()) == ["global", "baseline"]


class TestBuild:
    def test_every_level_fully_populated_on_complete_dataset(
        self, index, golden_dataset
    ):
        n_apps = len(golden_dataset.apps)
        n_inputs = len(golden_dataset.graphs)
        n_chips = len(golden_dataset.chips)
        expected = {
            "global": 1,
            "chip": n_chips,
            "app": n_apps,
            "input": n_inputs,
            "chip+app": n_chips * n_apps,
            "chip+input": n_chips * n_inputs,
            "app+input": n_apps * n_inputs,
            "chip+app+input": n_chips * n_apps * n_inputs,
            "baseline": 1,
        }
        assert {
            level: len(cells) for level, cells in index.levels.items()
        } == expected

    def test_matches_offline_strategies_exactly(self, index, golden_dataset):
        """Every served configuration equals the core.strategies answer."""
        strategies = build_strategies(golden_dataset)
        for test in golden_dataset.tests:
            for level in ("global", "chip", "chip+app", "chip+app+input"):
                offline = strategies[level].config_for(test).key()
                answer = index.lookup(
                    chip="chip" in level.split("+") and test.chip or None,
                    app="app" in level.split("+") and test.app or None,
                    input="input" in level.split("+") and test.graph or None,
                )
                assert answer.config == offline, (test, level)
                assert not answer.degraded
                assert answer.served_level == level

    def test_entry_metadata_is_finite_and_sane(self, index):
        for level, cells in index.levels.items():
            for entry in cells.values():
                assert entry.n_tests > 0, (level, entry.key)
                assert entry.cells_present == entry.cells_expected
                assert entry.cell_fraction == 1.0
                if entry.expected_speedup is not None:
                    assert math.isfinite(entry.expected_speedup)
                    assert entry.expected_speedup > 0
                if entry.slowdown_vs_oracle is not None:
                    assert math.isfinite(entry.slowdown_vs_oracle)
                    # No strategy beats per-test exhaustive tuning.
                    assert entry.slowdown_vs_oracle >= 1.0 - 1e-9

    def test_baseline_speedup_is_identity(self, index):
        entry = index.levels["baseline"][()]
        assert entry.config == "baseline"
        assert entry.expected_speedup == pytest.approx(1.0)
        assert entry.slowdown_vs_oracle >= 1.0


# Degradation cases: remove a region of the dataset, then assert the
# exact lattice level the query falls back to.  Each case is
# (tests_to_drop, query, expected_served_level).
_Q = {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road"}

DEGRADATION_CASES = [
    pytest.param(
        lambda t: (t.chip, t.app, t.graph) == ("MALI", "bfs-wl", "tiny-road"),
        _Q,
        "chip+app",
        id="one-test-missing-falls-to-chip+app",
    ),
    pytest.param(
        lambda t: (t.chip, t.app) == ("MALI", "bfs-wl"),
        _Q,
        "chip+input",
        id="chip-app-slice-missing-falls-to-chip+input",
    ),
    pytest.param(
        lambda t: t.chip == "MALI" and (t.app == "bfs-wl" or t.graph == "tiny-road"),
        _Q,
        "app+input",
        id="chip-slices-missing-falls-to-app+input",
    ),
    pytest.param(
        lambda t: t.chip == "MALI",
        {"chip": "MALI"},
        "global",
        id="whole-chip-missing-falls-to-global",
    ),
]


class TestDegradation:
    @pytest.mark.parametrize("drop,query,expected_level", DEGRADATION_CASES)
    def test_missing_cells_fall_back_exactly_one_level_chain(
        self, golden_dataset, drop, query, expected_level
    ):
        holed = golden_dataset.subset(
            [t for t in golden_dataset.tests if not drop(t)]
        )
        index = build_index(holed)
        answer = index.lookup(**query)
        assert answer.degraded
        assert answer.served_level == expected_level
        assert answer.requested_level == level_name(tuple(query))
        assert "fell back" in answer.note

    def test_quarantined_cells_degrade_like_missing_ones(self, golden_dataset):
        """NaN-poisoned cells are quarantined by the audit and the
        affected partition falls back, with the quarantine visible in
        both the coverage record and the answer's note."""
        poisoned = PerfDataset()
        victim = TestCase("bfs-wl", "tiny-road", "MALI")
        for test, config, times in golden_dataset.iter_measurements():
            if test == victim:
                times = (float("nan"),) * len(times)
            poisoned.add(test, config, times)
        audit = audit_dataset(poisoned)
        assert audit.coverage.quarantined == len(poisoned.configs)
        index = build_index(poisoned, audit=audit)
        assert index.coverage.quarantined == len(poisoned.configs)
        answer = index.lookup(chip="MALI", app="bfs-wl", input="tiny-road")
        assert answer.degraded
        assert answer.served_level == "chip+app"
        assert "quarantined" in answer.note

    def test_unknown_coordinates_fall_to_global(self, index):
        answer = index.lookup(chip="NOPE", app="nothing", input="void")
        assert answer.degraded
        assert answer.served_level == "global"
        assert answer.config == index.levels["global"][()].config

    def test_full_coverage_lookup_is_not_degraded(self, index, golden_dataset):
        t = golden_dataset.tests[0]
        answer = index.lookup(chip=t.chip, app=t.app, input=t.graph)
        assert not answer.degraded
        assert answer.note == ""


class TestPersistence:
    def test_save_load_roundtrip(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        loaded = StrategyIndex.load(path)
        assert loaded.n_entries == index.n_entries
        assert loaded.coverage == index.coverage
        assert loaded.meta == index.meta
        for level, cells in index.levels.items():
            assert set(loaded.levels[level]) == set(cells)
        query = {"chip": "MALI", "app": "bfs-wl", "input": "tiny-road"}
        assert loaded.lookup(**query).to_dict() == index.lookup(**query).to_dict()

    def test_save_is_deterministic(self, index, tmp_path):
        a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        index.save(a)
        index.save(b)
        with open(a, "rb") as fa, open(b, "rb") as fb:
            assert fa.read() == fb.read()

    def test_load_rejects_checksum_mismatch(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        with open(path) as f:
            payload = json.load(f)
        payload["index"]["levels"]["global"][0]["config"] = "wg"
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(StrategyIndexError, match="checksum mismatch"):
            StrategyIndex.load(path)

    def test_load_rejects_truncation(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text[: len(text) // 2])
        with pytest.raises(StrategyIndexError, match="truncated or invalid"):
            StrategyIndex.load(path)

    def test_load_rejects_wrong_format_tag(self, tmp_path):
        path = str(tmp_path / "index.json")
        with open(path, "w") as f:
            json.dump({"format": "something-else", "index": {}}, f)
        with pytest.raises(StrategyIndexError, match="expected format"):
            StrategyIndex.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(StrategyIndexError, match="cannot read"):
            StrategyIndex.load(str(tmp_path / "nope.json"))


class TestGoldenArtifact:
    def test_index_artifact_matches_golden(
        self, index, goldens_dir, update_goldens, tmp_path
    ):
        """Compiling the committed mini dataset produces a byte-identical
        ``strategy-index-v1`` artifact — any drift in Algorithm 1, the
        audit or the serialisation fails here before it reaches a
        deployed advisor."""
        built = str(tmp_path / GOLDEN_INDEX)
        index.save(built)
        golden = os.path.join(goldens_dir, GOLDEN_INDEX)
        if update_goldens:
            index.save(golden)
        if not os.path.exists(golden):
            pytest.fail(
                f"missing golden index {golden}; run with --update-goldens "
                f"to create it"
            )
        with open(built, "rb") as fa, open(golden, "rb") as fb:
            assert fa.read() == fb.read(), (
                "strategy-index artifact drifted from the committed golden; "
                "re-bless with --update-goldens if the change is intentional"
            )
        loaded = StrategyIndex.load(golden)
        assert loaded.n_entries == index.n_entries

    def test_format_tag(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        with open(path) as f:
            assert json.load(f)["format"] == INDEX_FORMAT
