"""End-to-end tests for ``repro serve --workers N`` (SO_REUSEPORT).

ISSUE 6's multi-worker contract: N forked workers share one listening
port, every worker serves byte-identical answers, per-worker recorders
merge into one run report whose counters reconcile *exactly* with the
closed-loop client's request count (the double-count exposure risk
satellite), and SIGTERM/SIGINT drain the whole fleet to exit 0.

These drive the real CLI as a subprocess, exactly like an operator.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import sys

import pytest

from tests.test_serve_e2e import GOLDEN_DATASET, ServerProcess, _run_cli

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT is not available on this platform",
)


@pytest.fixture(scope="module")
def index_path(goldens_dir, tmp_path_factory) -> str:
    dataset = os.path.join(goldens_dir, GOLDEN_DATASET)
    out = str(tmp_path_factory.mktemp("workers") / "index.json")
    result = _run_cli("index", dataset, out)
    assert result.returncode == 0, result.stderr
    return out


def _get_closing(port: int, target: str):
    """One request on its own connection, so the kernel may balance it
    to either worker (SO_REUSEPORT distributes per connection)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", target, headers={"Connection": "close"})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestWorkers:
    def test_fleet_serves_identical_answers_and_metrics_reconcile(
        self, index_path, tmp_path
    ):
        """The double-count exposure satellite: summed per-worker
        counters must equal the closed-loop client's request count."""
        metrics_path = str(tmp_path / "serve-metrics.json")
        server = ServerProcess(
            index_path, "--workers", "2", "--metrics", metrics_path
        )
        sent = 0
        try:
            target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
            bodies = set()
            for _ in range(24):
                status, body = _get_closing(server.port, target)
                sent += 1
                assert status == 200
                bodies.add(body)
            assert len(bodies) == 1  # byte-identical across the fleet

            # /metrics names the worker that answered, so a scrape of
            # one worker cannot pose as the service total.
            status, body = _get_closing(server.port, "/metrics")
            sent += 1
            assert status == 200
            per_worker = json.loads(body)
            assert per_worker["worker"] in (0, 1)

            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0
        assert "2 workers" in stderr
        assert "shut down cleanly" in stderr

        with open(metrics_path) as f:
            report = json.load(f)["report"]
        meta = report["meta"]
        assert meta["workers"] == 2
        assert meta["requests"] == sent
        assert sum(meta["per_worker_requests"].values()) == sent
        assert report["counters"]["serve.requests"] == sent
        assert report["counters"]["serve.responses.2xx"] == sent
        assert report["counters"]["serve.requests.strategy"] == sent - 1
        assert report["gauges"]["serve.workers"] == 2.0

    def test_sigterm_drains_both_workers_to_exit_zero(self, index_path):
        server = ServerProcess(index_path, "--workers", "2")
        try:
            status, body = _get_closing(server.port, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["worker"] in (0, 1)
            assert health["precompiled_answers"] == 48
            code, stderr = server.finish(sig=signal.SIGTERM)
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_sigint_also_drains_the_fleet(self, index_path):
        server = ServerProcess(index_path, "--workers", "2")
        try:
            status, _ = _get_closing(server.port, "/healthz")
            assert status == 200
            code, stderr = server.finish(sig=signal.SIGINT)
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_rejects_nonpositive_workers(self, index_path):
        result = _run_cli("serve", index_path, "--workers", "0")
        assert result.returncode == 1
        assert "--workers must be positive" in result.stderr
