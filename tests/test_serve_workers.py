"""End-to-end tests for ``repro serve --workers N`` (SO_REUSEPORT).

ISSUE 6's multi-worker contract: N forked workers share one listening
port, every worker serves byte-identical answers, per-worker recorders
merge into one run report whose counters reconcile *exactly* with the
closed-loop client's request count (the double-count exposure risk
satellite), and SIGTERM/SIGINT drain the whole fleet to exit 0.

These drive the real CLI as a subprocess, exactly like an operator.
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import socket
import sys

import pytest

from tests.test_serve_e2e import GOLDEN_DATASET, ServerProcess, _run_cli

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT is not available on this platform",
)


@pytest.fixture(scope="module")
def index_path(goldens_dir, tmp_path_factory) -> str:
    dataset = os.path.join(goldens_dir, GOLDEN_DATASET)
    out = str(tmp_path_factory.mktemp("workers") / "index.json")
    result = _run_cli("index", dataset, out)
    assert result.returncode == 0, result.stderr
    return out


def _get_closing(port: int, target: str):
    """One request on its own connection, so the kernel may balance it
    to either worker (SO_REUSEPORT distributes per connection)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", target, headers={"Connection": "close"})
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


class TestWorkers:
    def test_fleet_serves_identical_answers_and_metrics_reconcile(
        self, index_path, tmp_path
    ):
        """The double-count exposure satellite: summed per-worker
        counters must equal the closed-loop client's request count."""
        metrics_path = str(tmp_path / "serve-metrics.json")
        server = ServerProcess(
            index_path, "--workers", "2", "--metrics", metrics_path
        )
        sent = 0
        try:
            target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
            bodies = set()
            for _ in range(24):
                status, body = _get_closing(server.port, target)
                sent += 1
                assert status == 200
                bodies.add(body)
            assert len(bodies) == 1  # byte-identical across the fleet

            # /metrics names the worker that answered, so a scrape of
            # one worker cannot pose as the service total.
            status, body = _get_closing(server.port, "/metrics")
            sent += 1
            assert status == 200
            per_worker = json.loads(body)
            assert per_worker["worker"] in (0, 1)

            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0
        assert "2 workers" in stderr
        assert "shut down cleanly" in stderr

        with open(metrics_path) as f:
            report = json.load(f)["report"]
        meta = report["meta"]
        assert meta["workers"] == 2
        assert meta["requests"] == sent
        assert sum(meta["per_worker_requests"].values()) == sent
        assert report["counters"]["serve.requests"] == sent
        assert report["counters"]["serve.responses.2xx"] == sent
        assert report["counters"]["serve.requests.strategy"] == sent - 1
        assert report["gauges"]["serve.workers"] == 2.0

    def test_sigterm_drains_both_workers_to_exit_zero(self, index_path):
        server = ServerProcess(index_path, "--workers", "2")
        try:
            status, body = _get_closing(server.port, "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok"
            assert health["worker"] in (0, 1)
            assert health["precompiled_answers"] == 48
            code, stderr = server.finish(sig=signal.SIGTERM)
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_sigint_also_drains_the_fleet(self, index_path):
        server = ServerProcess(index_path, "--workers", "2")
        try:
            status, _ = _get_closing(server.port, "/healthz")
            assert status == 200
            code, stderr = server.finish(sig=signal.SIGINT)
        finally:
            server.kill()
        assert code == 0
        assert "shut down cleanly" in stderr

    def test_rejects_nonpositive_workers(self, index_path):
        result = _run_cli("serve", index_path, "--workers", "0")
        assert result.returncode == 1
        assert "--workers must be positive" in result.stderr


class TestSelfHealing:
    """ISSUE 9's supervision contract, driven with a real ``kill -9``:
    the fleet heals (death → backoff → respawn), the merged run report
    reconciles *exactly* with the client's successful-request count
    despite the crash, and an exhausted restart budget escalates the
    whole fleet to exit code 2."""

    def _healthz(self, port: int):
        status, body = _get_closing(port, "/healthz")
        assert status == 200
        return json.loads(body)

    def test_sigkill_heals_fleet_and_report_reconciles_exactly(
        self, index_path, tmp_path
    ):
        import time

        from repro.study.doctor import diagnose_run_report

        metrics_path = str(tmp_path / "chaos-metrics.json")
        server = ServerProcess(
            index_path,
            "--workers", "2",
            "--metrics", metrics_path,
            "--max-restarts", "4",
            "--restart-backoff", "0.05",
            "--heartbeat-interval", "0.2",
        )
        sent = 0
        try:
            target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
            for _ in range(10):
                status, _ = _get_closing(server.port, target)
                assert status == 200
                sent += 1
            victim = self._healthz(server.port)["pid"]
            sent += 1
            # Quiesce for longer than the heartbeat interval so every
            # worker ships its request delta BEFORE the kill: the
            # reconciliation below is exact, not approximate.
            time.sleep(0.6)
            os.kill(victim, signal.SIGKILL)

            # Poll until the respawned incarnation answers.  Requests
            # racing the death may be reset (the dead listener's accept
            # backlog) — those never dispatched, so they don't count.
            healed = False
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    health = self._healthz(server.port)
                except (OSError, http.client.HTTPException):
                    time.sleep(0.05)
                    continue
                sent += 1
                if health["worker_restarts"] >= 1:
                    healed = True
                    break
                time.sleep(0.05)
            assert healed, "fleet did not respawn the killed worker"

            # The healed fleet still serves correct answers.
            for _ in range(10):
                status, _ = _get_closing(server.port, target)
                assert status == 200
                sent += 1
            time.sleep(0.6)  # final quiesce: last deltas ship
            code, stderr = server.finish()
        finally:
            server.kill()
        assert code == 0, stderr
        assert "died" in stderr
        assert "respawned (incarnation 1)" in stderr
        assert "shut down cleanly" in stderr

        with open(metrics_path) as f:
            report = json.load(f)["report"]
        meta = report["meta"]
        counters = report["counters"]
        assert meta["deaths"] == 1
        assert meta["restarts"] == 1
        assert counters["serve.workers.deaths"] == 1
        assert counters["serve.workers.restarts"] == 1
        # Exact reconciliation through a kill -9: the victim's
        # unshipped tail is lost from the merged counters and the
        # per-worker ledger *identically*, so both equal the client's
        # successful-request count.
        assert meta["requests"] == sent
        assert counters["serve.requests"] == sent
        assert sum(meta["per_worker_requests"].values()) == sent
        # And the doctor agrees: no reconciliation warnings.
        diag = diagnose_run_report(metrics_path)
        assert diag.ok
        assert all(f.severity == "info" for f in diag.findings)

    def test_exhausted_restart_budget_escalates_to_exit_2(
        self, index_path
    ):
        server = ServerProcess(
            index_path,
            "--workers", "2",
            "--max-restarts", "0",
            "--heartbeat-interval", "0.2",
        )
        try:
            victim = self._healthz(server.port)["pid"]
            os.kill(victim, signal.SIGKILL)
            code = server.proc.wait(timeout=30)
            stderr = server.proc.stderr.read()
        finally:
            server.kill()
        assert code == 2
        assert "restart budget" in stderr
        assert "escalated shutdown" in stderr
