"""Shard checkpointing and kill-and-resume recovery."""

import json
import os

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.errors import CheckpointError
from repro.faults import FaultPlan
from repro.graphs import rmat_graph
from repro.graphs.inputs import StudyInput
from repro.study import (
    StudyCheckpoint,
    StudyConfig,
    collect_traces,
    run_study,
    study_fingerprint,
)


@pytest.fixture(scope="module")
def tiny_config() -> StudyConfig:
    """1 app x 1 input x 2 chips x 4 configurations: 8 shards."""
    graph = rmat_graph(6, edge_factor=6, seed=5, name="c-rmat")
    return StudyConfig(
        apps=[get_application("bfs-wl")],
        inputs={
            "c-rmat": StudyInput(
                name="c-rmat",
                input_class="social",
                description="checkpoint test rmat",
                _builder=lambda: graph,
            )
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[::24],
    )


@pytest.fixture(scope="module")
def baseline(tiny_config):
    return run_study(tiny_config, jobs=1)


ROWS = [("bfs-wl", "c-rmat", [1.5, 2.5, 3.5])]


class TestStudyCheckpoint:
    def test_fresh_open_is_empty(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        assert ckpt.open("f" * 16, 2, 4, resume=False) == {}
        assert os.path.exists(os.path.join(ckpt.directory, "manifest.json"))

    def test_record_and_resume_roundtrip(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("f" * 16, 2, 4, resume=False)
        ckpt.record((0, 1), ROWS)
        ckpt.record((1, 3), ROWS)
        loaded = StudyCheckpoint(ckpt.directory).open("f" * 16, 2, 4, resume=True)
        assert set(loaded) == {(0, 1), (1, 3)}
        assert loaded[(0, 1)] == [("bfs-wl", "c-rmat", [1.5, 2.5, 3.5])]

    def test_resume_on_empty_directory_is_fresh(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        assert ckpt.open("f" * 16, 2, 4, resume=True) == {}

    def test_stale_fingerprint_rejected_on_resume(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("a" * 16, 2, 4, resume=False)
        ckpt.record((0, 0), ROWS)
        with pytest.raises(CheckpointError, match="stale checkpoint"):
            ckpt.open("b" * 16, 2, 4, resume=True)
        # ... and the shards were not touched by the rejection.
        assert ckpt.open("a" * 16, 2, 4, resume=True) != {}

    def test_non_resume_open_clears_stale_contents(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("a" * 16, 2, 4, resume=False)
        ckpt.record((0, 0), ROWS)
        assert ckpt.open("b" * 16, 2, 4, resume=False) == {}
        assert ckpt.open("b" * 16, 2, 4, resume=True) == {}

    def test_corrupt_shard_dropped_not_merged(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("f" * 16, 2, 4, resume=False)
        ckpt.record((0, 0), ROWS)
        ckpt.record((0, 1), ROWS)
        shard = os.path.join(ckpt.directory, "shard-0000-0001.json")
        with open(shard) as f:
            payload = f.read()
        with open(shard, "w") as f:
            f.write(payload[: len(payload) // 2])  # truncation
        loaded = ckpt.open("f" * 16, 2, 4, resume=True)
        assert set(loaded) == {(0, 0)}
        assert ckpt.skipped_shards == 1

    def test_tampered_shard_fails_checksum(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("f" * 16, 2, 4, resume=False)
        ckpt.record((0, 0), ROWS)
        shard = os.path.join(ckpt.directory, "shard-0000-0000.json")
        with open(shard) as f:
            payload = json.load(f)
        payload["rows"][0][2][0] = 99.0  # silently altered timing
        with open(shard, "w") as f:
            json.dump(payload, f)
        assert ckpt.open("f" * 16, 2, 4, resume=True) == {}
        assert ckpt.skipped_shards == 1

    def test_out_of_range_shard_dropped(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("f" * 16, 2, 4, resume=False)
        ckpt.record((1, 3), ROWS)
        # The same checkpoint against a smaller grid: the shard no
        # longer fits and must be re-priced, not merged out of range.
        assert ckpt.open("f" * 16, 1, 2, resume=True) == {}

    def test_unrecognised_manifest_rejected(self, tmp_path):
        directory = tmp_path / "ck"
        directory.mkdir()
        (directory / "manifest.json").write_text('{"format": "other"}')
        with pytest.raises(CheckpointError, match="unrecognised"):
            StudyCheckpoint(str(directory)).open("f" * 16, 2, 4, resume=True)

    def test_clear_removes_directory(self, tmp_path):
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        ckpt.open("f" * 16, 2, 4, resume=False)
        ckpt.record((0, 0), ROWS)
        ckpt.clear()
        assert not os.path.exists(ckpt.directory)


class TestFingerprint:
    def test_stable_across_calls(self, tiny_config):
        traces = collect_traces(tiny_config)
        assert study_fingerprint(
            tiny_config, "batch", traces
        ) == study_fingerprint(tiny_config, "batch", traces)

    def test_sensitive_to_engine_and_repetitions(self, tiny_config):
        traces = collect_traces(tiny_config)
        base = study_fingerprint(tiny_config, "batch", traces)
        assert study_fingerprint(tiny_config, "scalar", traces) != base
        other = StudyConfig(
            apps=tiny_config.apps,
            inputs=tiny_config.inputs,
            chips=tiny_config.chips,
            configs=tiny_config.configs,
            repetitions=tiny_config.repetitions + 1,
        )
        assert study_fingerprint(other, "batch", traces) != base

    def test_sensitive_to_axes(self, tiny_config):
        traces = collect_traces(tiny_config)
        base = study_fingerprint(tiny_config, "batch", traces)
        fewer_chips = StudyConfig(
            apps=tiny_config.apps,
            inputs=tiny_config.inputs,
            chips=tiny_config.chips[:1],
            configs=tiny_config.configs,
        )
        fewer_configs = StudyConfig(
            apps=tiny_config.apps,
            inputs=tiny_config.inputs,
            chips=tiny_config.chips,
            configs=tiny_config.configs[:2],
        )
        assert study_fingerprint(fewer_chips, "batch", traces) != base
        assert study_fingerprint(fewer_configs, "batch", traces) != base


class TestKillAndResume:
    """Interrupted sweeps resume to the bit-identical dataset."""

    def _interrupt(self, tiny_config, tmp_path, jobs, expect_partial=True):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("interrupt", "shard-0-2")
        ckpt_dir = str(tmp_path / "ck")
        with pytest.raises(KeyboardInterrupt):
            run_study(tiny_config, jobs=jobs, faults=plan, checkpoint=ckpt_dir)
        shards = [
            n
            for n in os.listdir(ckpt_dir)
            if n.startswith("shard-") and n.endswith(".json")
        ]
        assert shards, "interrupted run checkpointed nothing"
        if expect_partial:  # parallel completion order is nondeterministic
            assert len(shards) < 8, "interrupt fired after the whole sweep"
        return ckpt_dir

    def test_serial_interrupt_then_resume(self, tiny_config, baseline, tmp_path):
        ckpt_dir = self._interrupt(tiny_config, tmp_path, jobs=1)
        messages = []
        resumed = run_study(
            tiny_config,
            progress=messages.append,
            jobs=1,
            checkpoint=ckpt_dir,
            resume=True,
        )
        assert resumed == baseline
        assert any(m.startswith("resuming:") for m in messages)

    def test_parallel_interrupt_then_resume(
        self, tiny_config, baseline, tmp_path
    ):
        ckpt_dir = self._interrupt(
            tiny_config, tmp_path, jobs=2, expect_partial=False
        )
        resumed = run_study(
            tiny_config, jobs=2, checkpoint=ckpt_dir, resume=True
        )
        assert resumed == baseline

    def test_resume_across_job_counts(self, tiny_config, baseline, tmp_path):
        """A serial run's checkpoint resumes under a parallel run."""
        ckpt_dir = self._interrupt(tiny_config, tmp_path, jobs=1)
        resumed = run_study(
            tiny_config, jobs=2, checkpoint=ckpt_dir, resume=True
        )
        assert resumed == baseline

    def test_stale_checkpoint_rejected_by_run_study(
        self, tiny_config, tmp_path
    ):
        ckpt_dir = self._interrupt(tiny_config, tmp_path, jobs=1)
        different = StudyConfig(
            apps=tiny_config.apps,
            inputs=tiny_config.inputs,
            chips=tiny_config.chips,
            configs=tiny_config.configs,
            repetitions=2,
        )
        with pytest.raises(CheckpointError):
            run_study(different, jobs=1, checkpoint=ckpt_dir, resume=True)

    def test_resume_without_checkpoint_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_study(tiny_config, resume=True)

    def test_checkpointed_run_without_resume_matches(
        self, tiny_config, baseline, tmp_path
    ):
        dataset = run_study(
            tiny_config, jobs=1, checkpoint=str(tmp_path / "ck")
        )
        assert dataset == baseline
