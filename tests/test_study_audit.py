"""Dataset audit and quarantine (repro.study.audit)."""

import json

import pytest

from repro.compiler.options import OptConfig
from repro.errors import AuditError, InsufficientCoverageError
from repro.study.audit import (
    AUDIT_FORMAT,
    DatasetAudit,
    audit_dataset,
    require_coverage,
)
from repro.study.dataset import Coverage, PerfDataset, TestCase


def _configs():
    return [OptConfig(), OptConfig.from_names(["wg"])]


def _make_dataset(chips=("c0", "c1"), apps=("a0", "a1"), graphs=("g0",)):
    ds = PerfDataset()
    for chip in chips:
        for app in apps:
            for graph in graphs:
                for cfg in _configs():
                    ds.add(TestCase(app, graph, chip), cfg, (1.0, 2.0, 3.0))
    return ds


def _poison(ds, test, key, times):
    """Bypass add()'s validation to plant a bad cell (as corruption would)."""
    ds._times[(test, key)] = times


class TestAuditVerdicts:
    def test_clean_dataset_is_ok(self):
        audit = audit_dataset(_make_dataset())
        assert audit.ok
        assert audit.coverage.complete
        assert audit.quarantined == [] and audit.missing == []
        assert audit.dataset is not None
        assert "100%" in audit.render()

    def test_nan_cell_quarantined(self):
        ds = _make_dataset()
        bad = TestCase("a0", "g0", "c0")
        _poison(ds, bad, "wg", (float("nan"), 1.0, 2.0))
        audit = audit_dataset(ds)
        assert len(audit.quarantined) == 1
        issue = audit.quarantined[0]
        assert issue.test == bad and issue.config_key == "wg"
        assert "non-finite" in issue.reason
        # The cleaned dataset no longer holds the poisoned cell.
        assert audit.dataset.times_or_none(bad, OptConfig.from_names(["wg"])) is None
        assert audit.coverage.quarantined == 1
        assert not audit.coverage.complete

    def test_inf_and_nonpositive_quarantined(self):
        ds = _make_dataset()
        _poison(ds, TestCase("a0", "g0", "c0"), "baseline", (float("inf"),))
        _poison(ds, TestCase("a1", "g0", "c1"), "wg", (0.0, 1.0))
        audit = audit_dataset(ds)
        reasons = sorted(i.reason for i in audit.quarantined)
        assert len(reasons) == 2
        assert any("non-finite" in r for r in reasons)
        assert any("non-positive" in r for r in reasons)

    def test_repetition_count_enforced(self):
        ds = _make_dataset()
        _poison(ds, TestCase("a0", "g0", "c1"), "baseline", (1.0, 2.0))
        audit = audit_dataset(ds, repetitions=3)
        assert len(audit.quarantined) == 1
        assert "repetitions" in audit.quarantined[0].reason

    def test_missing_cells_against_expected_grid(self):
        ds = _make_dataset(chips=("c0",))
        expected = [TestCase(a, "g0", c) for a in ("a0", "a1") for c in ("c0", "c1")]
        audit = audit_dataset(ds, expected_tests=expected)
        assert len(audit.missing) == 4  # chip c1 never measured: 2 apps x 2 cfgs
        assert all(i.verdict == "missing" for i in audit.missing)
        assert audit.coverage.fraction == pytest.approx(0.5)
        assert any("chip c1" in h for h in audit.coverage.holes)

    def test_strict_raises_on_first_bad_cell(self):
        ds = _make_dataset()
        _poison(ds, TestCase("a0", "g0", "c0"), "wg", (float("nan"),))
        with pytest.raises(AuditError, match="non-finite"):
            audit_dataset(ds, strict=True)

    def test_dimension_coverage_counts(self):
        ds = _make_dataset()
        bad = TestCase("a0", "g0", "c0")
        _poison(ds, bad, "wg", (float("nan"),))
        audit = audit_dataset(ds)
        present, expected = audit.dimension_coverage["chip"]["c0"]
        assert (present, expected) == (3, 4)
        assert audit.dimension_coverage["chip"]["c1"] == (4, 4)


class TestAuditArtifact:
    def test_roundtrip(self, tmp_path):
        ds = _make_dataset()
        _poison(ds, TestCase("a0", "g0", "c0"), "wg", (float("inf"),))
        audit = audit_dataset(ds)
        path = str(tmp_path / "audit.json")
        audit.save(path)
        loaded = DatasetAudit.load_dict(path)
        assert loaded == audit.to_dict()
        assert loaded["cells_present"] == audit.coverage.present
        assert len(loaded["quarantined"]) == 1

    def test_format_tag(self, tmp_path):
        path = str(tmp_path / "audit.json")
        audit_dataset(_make_dataset()).save(path)
        with open(path) as f:
            payload = json.load(f)
        assert payload["format"] == AUDIT_FORMAT

    def test_truncated_artifact_rejected(self, tmp_path):
        path = str(tmp_path / "audit.json")
        audit_dataset(_make_dataset()).save(path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text[: len(text) // 2])
        with pytest.raises(AuditError, match="truncated or invalid"):
            DatasetAudit.load_dict(path)

    def test_tampered_artifact_rejected(self, tmp_path):
        path = str(tmp_path / "audit.json")
        audit_dataset(_make_dataset()).save(path)
        with open(path) as f:
            payload = json.load(f)
        payload["audit"]["cells_present"] += 1
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(AuditError, match="checksum mismatch"):
            DatasetAudit.load_dict(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = str(tmp_path / "audit.json")
        with open(path, "w") as f:
            json.dump({"format": "something-else"}, f)
        with pytest.raises(AuditError, match="unrecognised"):
            DatasetAudit.load_dict(path)


class TestCoverageFloor:
    def test_above_floor_passes(self):
        require_coverage(Coverage(present=9, expected=10), floor=0.5)

    def test_below_floor_raises_with_holes(self):
        cov = Coverage(
            present=1, expected=10, holes=("chip MALI: 9/10 cells missing",)
        )
        with pytest.raises(InsufficientCoverageError, match="MALI") as excinfo:
            require_coverage(cov, floor=0.5)
        assert excinfo.value.coverage is cov
        assert "--resume" in str(excinfo.value)

    def test_floor_validated(self):
        with pytest.raises(ValueError):
            require_coverage(Coverage(present=1, expected=1), floor=1.5)

    def test_empty_grid_counts_as_full(self):
        require_coverage(Coverage(present=0, expected=0), floor=1.0)
