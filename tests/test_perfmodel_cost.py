"""Tests for the per-launch cost model and end-to-end simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.chips import all_chips, get_chip
from repro.compiler import BASELINE, OptConfig, compile_program, enumerate_configs
from repro.dsl import fixpoint_program, relax_kernel
from repro.errors import ExecutionError
from repro.perfmodel import (
    estimate_runtime_us,
    kernel_time_us,
    launch_cost,
    measure_repeats_us,
    measure_us,
)
from repro.runtime.trace import LaunchRecord, Trace


@pytest.fixture(scope="module")
def bfs_trace(small_road_module):
    app = get_application("bfs-wl")
    return app.program(), app.run(small_road_module).trace


@pytest.fixture(scope="module")
def small_road_module():
    from repro.graphs import road_network

    return road_network(12, 12, seed=3)


def record(**kwargs):
    base = dict(
        kernel="bfs_wl_step", iteration=0, in_fixpoint=True,
        active_items=500, expanded_items=500, edges=2500,
        deg_hist=(100, 200, 150, 50), irregularity=0.5, pushes=300,
    )
    base.update(kwargs)
    return LaunchRecord(**base)


class TestLaunchCost:
    def test_components_non_negative(self, bfs_trace):
        program, trace = bfs_trace
        for chip in all_chips():
            for config in (BASELINE, OptConfig(sg=True, fg=8, coop_cv=True)):
                plan = compile_program(program, chip, config)
                for rec in trace.launches:
                    cost = launch_cost(plan, plan.kernel_plan(rec.kernel), rec)
                    assert cost.scan_us >= 0
                    assert cost.edge_us >= 0
                    assert cost.barrier_us >= 0
                    assert cost.local_us >= 0
                    assert cost.atomic_us >= 0
                    assert cost.total_us > 0

    def test_more_edges_cost_more(self, bfs_trace):
        # Inner-loop work is derived from the degree histogram; more
        # nodes per bucket means more edges, which must cost more.
        program, _ = bfs_trace
        plan = compile_program(program, get_chip("R9"), BASELINE)
        kp = plan.kernel_plan("bfs_wl_step")
        small = kernel_time_us(plan, kp, record(deg_hist=(100, 200, 150, 50)))
        large = kernel_time_us(
            plan, kp, record(deg_hist=(1000, 2000, 1500, 500))
        )
        assert large > small

    def test_divergent_launch_slower_on_mali(self, bfs_trace):
        program, _ = bfs_trace
        plan = compile_program(program, get_chip("MALI"), BASELINE)
        kp = plan.kernel_plan("bfs_wl_step")
        smooth = kernel_time_us(plan, kp, record(irregularity=0.0))
        divergent = kernel_time_us(plan, kp, record(irregularity=1.0))
        assert divergent > 3 * smooth

    def test_np_overhead_on_balanced_work(self, bfs_trace):
        """On uniform degrees the schemes only add overhead (V-B)."""
        program, _ = bfs_trace
        chip = get_chip("GTX1080")
        rec = record(deg_hist=(0, 0, 500), irregularity=0.0, edges=3000)
        base = compile_program(program, chip, BASELINE)
        np_cfg = compile_program(program, chip, OptConfig(wg=True, sg=True))
        t_base = kernel_time_us(base, base.kernel_plan(rec.kernel), rec)
        t_np = kernel_time_us(np_cfg, np_cfg.kernel_plan(rec.kernel), rec)
        assert t_np > t_base

    def test_fg8_helps_on_skewed_work(self, bfs_trace):
        program, _ = bfs_trace
        chip = get_chip("GTX1080")
        skewed = record(
            deg_hist=(400, 50, 20, 10, 5, 5, 4, 3, 2, 1, 1),
            edges=int(
                sum(c * 1.5 * 2 ** b for b, c in enumerate(
                    (400, 50, 20, 10, 5, 5, 4, 3, 2, 1, 1)))
            ),
        )
        base = compile_program(program, chip, BASELINE)
        fg8 = compile_program(program, chip, OptConfig(fg=8))
        t_base = kernel_time_us(base, base.kernel_plan(skewed.kernel), skewed)
        t_fg8 = kernel_time_us(fg8, fg8.kernel_plan(skewed.kernel), skewed)
        assert t_fg8 < t_base

    def test_empty_launch_costs_only_fixed(self, bfs_trace):
        program, _ = bfs_trace
        plan = compile_program(program, get_chip("R9"), BASELINE)
        kp = plan.kernel_plan("bfs_wl_step")
        rec = record(
            active_items=0, expanded_items=0, edges=0, deg_hist=(),
            pushes=0, irregularity=0.0,
        )
        cost = launch_cost(plan, kp, rec)
        assert cost.total_us == pytest.approx(cost.fixed_us)


class TestSimulate:
    def test_estimate_deterministic(self, bfs_trace):
        program, trace = bfs_trace
        plan = compile_program(program, get_chip("IRIS"), BASELINE)
        assert estimate_runtime_us(plan, trace) == estimate_runtime_us(plan, trace)

    def test_trace_program_mismatch_rejected(self, bfs_trace):
        program, trace = bfs_trace
        other = fixpoint_program("other", [relax_kernel("k", "x")])
        plan = compile_program(other, get_chip("IRIS"), BASELINE)
        with pytest.raises(ExecutionError):
            estimate_runtime_us(plan, trace)

    def test_measurements_cluster_around_estimate(self, bfs_trace):
        program, trace = bfs_trace
        plan = compile_program(program, get_chip("GTX1080"), BASELINE)
        true = estimate_runtime_us(plan, trace)
        reps = measure_repeats_us(plan, trace, repetitions=20)
        assert np.median(reps) == pytest.approx(true, rel=0.10)

    def test_repeat_list_matches_individual_measures(self, bfs_trace):
        program, trace = bfs_trace
        plan = compile_program(program, get_chip("R9"), BASELINE)
        reps = measure_repeats_us(plan, trace, repetitions=3)
        assert reps == [measure_us(plan, trace, rep=r) for r in range(3)]

    def test_rejects_zero_repetitions(self, bfs_trace):
        program, trace = bfs_trace
        plan = compile_program(program, get_chip("R9"), BASELINE)
        with pytest.raises(ValueError):
            measure_repeats_us(plan, trace, repetitions=0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=95))
    def test_all_configs_price_positively(self, idx):
        from repro.graphs import road_network

        app = get_application("bfs-wl")
        trace = app.run(road_network(8, 8, seed=1)).trace
        config = enumerate_configs()[idx]
        for chip in (get_chip("GTX1080"), get_chip("MALI")):
            plan = compile_program(app.program(), chip, config)
            assert estimate_runtime_us(plan, trace) > 0
