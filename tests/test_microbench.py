"""Tests for the explanatory microbenchmarks (Fig 5, Table X)."""

import pytest

from repro.chips import CHIP_NAMES, get_chip
from repro.microbench import (
    launch_overhead_sweep,
    m_divg_speedup,
    m_divg_table,
    sg_cmb_speedup,
    sg_cmb_table,
)


class TestLaunchOverhead:
    def test_covers_all_chips(self):
        sweep = launch_overhead_sweep(noisy=False)
        assert set(sweep) == set(CHIP_NAMES)

    def test_utilisation_in_unit_interval(self):
        for points in launch_overhead_sweep(noisy=True).values():
            assert all(0.0 <= p.utilisation <= 1.0 for p in points)

    def test_monotone_in_kernel_time_without_noise(self):
        for points in launch_overhead_sweep(noisy=False).values():
            utils = [p.utilisation for p in points]
            assert utils == sorted(utils)

    def test_nvidia_highest_utilisation(self):
        """Fig 5: Nvidia utilisation dominates at small kernel times."""
        sweep = launch_overhead_sweep(noisy=False)
        for idx in range(4):  # the small-kernel-time regime
            nvidia = min(
                sweep["M4000"][idx].utilisation, sweep["GTX1080"][idx].utilisation
            )
            others = max(
                sweep[c][idx].utilisation
                for c in CHIP_NAMES
                if c not in ("M4000", "GTX1080")
            )
            assert nvidia > others

    def test_mali_lowest_utilisation(self):
        sweep = launch_overhead_sweep(noisy=False)
        for idx in range(4):
            assert sweep["MALI"][idx].utilisation == min(
                sweep[c][idx].utilisation for c in CHIP_NAMES
            )

    def test_noise_deterministic(self):
        a = launch_overhead_sweep(noisy=True)
        b = launch_overhead_sweep(noisy=True)
        assert a == b


class TestSgCmb:
    def test_r9_largest_win(self):
        """Paper: ~22x on R9, a fraction of the subgroup size of 64."""
        table = sg_cmb_table()
        r9 = table["R9"].speedup
        assert 15 <= r9 <= 30
        assert r9 == max(r.speedup for r in table.values())

    def test_iris_wins_about_half_its_subgroup(self):
        iris = sg_cmb_table()["IRIS"].speedup
        assert 5 <= iris <= 10  # paper: ~8 of a possible 16

    def test_jit_chips_see_no_benefit(self):
        """Nvidia and HD5500 JITs already combine (paper VIII-b)."""
        table = sg_cmb_table()
        for chip in ("M4000", "GTX1080", "HD5500"):
            assert table[chip].speedup <= 1.0

    def test_mali_trivial_subgroup_no_effect(self):
        assert sg_cmb_table()["MALI"].speedup == pytest.approx(1.0, abs=0.1)

    def test_speedup_consistent_with_times(self):
        r = sg_cmb_speedup(get_chip("R9"))
        assert r.speedup == pytest.approx(
            r.time_original_us / r.time_combined_us
        )


class TestMDivg:
    def test_mali_extreme_outlier(self):
        """Paper: ~6.45x on MALI vs 1.1-1.5x elsewhere."""
        table = m_divg_table()
        assert 5.0 <= table["MALI"].speedup <= 8.0
        for chip in CHIP_NAMES:
            if chip != "MALI":
                assert 1.0 <= table[chip].speedup <= 1.6

    def test_all_chips_benefit(self):
        """The gratuitous barrier helps (or at worst is neutral) everywhere."""
        for r in m_divg_table().values():
            assert r.speedup >= 1.0

    def test_speedup_consistent_with_times(self):
        r = m_divg_speedup(get_chip("MALI"))
        assert r.speedup == pytest.approx(r.time_plain_us / r.time_barrier_us)
