"""Tests for the parallel sweep, engines, plan cache and progress."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import BASELINE, OptConfig, PlanCache, enumerate_configs
from repro.graphs import rmat_graph, road_network
from repro.graphs.inputs import StudyInput
from repro.study import (
    PhaseTimer,
    StudyConfig,
    collect_traces,
    format_duration,
    run_study,
)


@pytest.fixture(scope="module")
def tiny_config() -> StudyConfig:
    """2 apps x 2 inputs x 2 chips x 12 configurations."""
    road = road_network(12, 12, seed=9, name="p-road")
    rmat = rmat_graph(7, edge_factor=8, seed=9, name="p-rmat")
    return StudyConfig(
        apps=[get_application("bfs-wl"), get_application("sssp-nf")],
        inputs={
            "p-road": StudyInput(
                name="p-road",
                input_class="road",
                description="parallel test road",
                _builder=lambda: road,
            ),
            "p-rmat": StudyInput(
                name="p-rmat",
                input_class="social",
                description="parallel test rmat",
                _builder=lambda: rmat,
            ),
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[::8],
    )


@pytest.fixture(scope="module")
def serial_dataset(tiny_config):
    return run_study(tiny_config, jobs=1, engine="batch")


class TestParallelDeterminism:
    def test_jobs4_identical_to_jobs1(self, tiny_config, serial_dataset):
        parallel = run_study(tiny_config, jobs=4, engine="batch")
        assert parallel == serial_dataset
        # Same table *and* same insertion order as the serial sweep.
        assert parallel.tests == serial_dataset.tests
        assert [c.key() for c in parallel.configs] == [
            c.key() for c in serial_dataset.configs
        ]

    def test_scalar_engine_identical(self, tiny_config, serial_dataset):
        assert run_study(tiny_config, engine="scalar") == serial_dataset

    def test_parallel_scalar_engine_identical(self, tiny_config, serial_dataset):
        assert (
            run_study(tiny_config, jobs=2, engine="scalar") == serial_dataset
        )

    def test_precollected_traces_identical(self, tiny_config, serial_dataset):
        traces = collect_traces(tiny_config)
        assert run_study(tiny_config, traces=traces) == serial_dataset

    def test_unknown_engine_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_study(tiny_config, engine="gpu")

    def test_non_positive_jobs_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_study(tiny_config, jobs=0)


@st.composite
def fuzzed_studies(draw) -> StudyConfig:
    """A random tiny StudyConfig for differential jobs fuzzing."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    app_names = draw(
        st.lists(
            st.sampled_from(("bfs-wl", "pr-topo", "sssp-nf")),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    chip_names = draw(
        st.lists(
            st.sampled_from(("GTX1080", "MALI", "R9")),
            min_size=1,
            max_size=2,
            unique=True,
        )
    )
    log_nodes = draw(st.integers(min_value=4, max_value=6))
    stride = draw(st.integers(min_value=19, max_value=48))
    repetitions = draw(st.integers(min_value=1, max_value=3))
    graph = rmat_graph(log_nodes, edge_factor=6, seed=seed, name=f"fj-{seed}")
    return StudyConfig(
        apps=[get_application(name) for name in app_names],
        inputs={
            graph.name: StudyInput(
                name=graph.name,
                input_class="social",
                description="fuzzed rmat",
                _builder=lambda: graph,
            )
        },
        chips=[get_chip(name) for name in chip_names],
        configs=enumerate_configs()[::stride],
        repetitions=repetitions,
    )


class TestJobsFuzz:
    """Differential fuzzing: sharding never changes the dataset."""

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=fuzzed_studies())
    def test_jobs2_equals_jobs1_on_random_studies(self, config):
        assert run_study(config, jobs=2) == run_study(config, jobs=1)


class TestPlanCache:
    def test_hit_returns_same_plan(self):
        cache = PlanCache()
        program = get_application("bfs-wl").program()
        chip = get_chip("R9")
        first = cache.get(program, chip, BASELINE)
        assert cache.get(program, chip, BASELINE) is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_same_name_different_program_not_aliased(self):
        cache = PlanCache()
        chip = get_chip("R9")
        p1 = get_application("bfs-wl").program()
        p2 = get_application("bfs-wl").program()
        plan1 = cache.get(p1, chip, BASELINE)
        plan2 = cache.get(p2, chip, BASELINE)
        assert plan1.program is p1 and plan2.program is p2
        assert cache.misses == 2

    def test_lru_eviction(self):
        cache = PlanCache(maxsize=2)
        program = get_application("bfs-wl").program()
        chip = get_chip("R9")
        configs = [BASELINE, OptConfig(sg=True), OptConfig(fg=8)]
        for cfg in configs:
            cache.get(program, chip, cfg)
        assert len(cache) == 2
        cache.get(program, chip, BASELINE)  # evicted -> recompiled
        assert cache.misses == 4

    def test_clear(self):
        cache = PlanCache()
        cache.get(get_application("bfs-wl").program(), get_chip("R9"), BASELINE)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0


class TestProgress:
    def test_skipped_pairs_reported(self):
        from repro.graphs import CSRGraph

        unweighted = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        cfg = StudyConfig(
            apps=[get_application("sssp-nf"), get_application("bfs-wl")],
            inputs={
                "uw": StudyInput(
                    name="uw",
                    input_class="random",
                    description="unweighted",
                    _builder=lambda: unweighted,
                )
            },
            chips=[get_chip("R9")],
            configs=[BASELINE],
        )
        messages = []
        collect_traces(cfg, progress=messages.append)
        skips = [m for m in messages if m.startswith("skipping")]
        assert skips == [
            "skipping sssp-nf on uw: requires edge weights but graph is "
            "unweighted"
        ]

    def test_run_study_progress_has_phase_timing(self, tiny_config):
        messages = []
        run_study(tiny_config, progress=messages.append)
        assert any(
            m.startswith("collected ") and "traces in" in m for m in messages
        )
        assert any(m.startswith("priced ") for m in messages)
        pricing = [m for m in messages if m.startswith("pricing on ")]
        assert len(pricing) == len(tiny_config.chips)
        assert all("elapsed" in m for m in pricing)
        # The second chip's message carries an ETA from the first's rate.
        assert "eta" in pricing[1]

    def test_phase_timer_decoration(self):
        out = []
        timer = PhaseTimer(out.append)
        timer.start("work", total=4)
        timer.note("step one")
        timer.tick(2)
        timer.note("step two")
        timer.finish("done")
        assert out[0].startswith("step one [0/4, elapsed ")
        assert "eta" not in out[0]
        assert out[1].startswith("step two [2/4, elapsed ")
        assert "eta" in out[1]
        assert out[2].startswith("done in ")

    def test_phase_timer_silent_without_emitter(self):
        timer = PhaseTimer(None)
        timer.start("work", total=1)
        timer.note("ignored")
        timer.finish("ignored")  # must not raise

    def test_format_duration(self):
        assert format_duration(0.44) == "0.4s"
        assert format_duration(59.94) == "59.9s"
        assert format_duration(125.0) == "2m05s"
        assert format_duration(-1.0) == "0.0s"
