"""Malformed-HTTP hardening tests for the asyncio server.

Each test opens a raw socket and speaks deliberately broken HTTP at a
real :class:`StrategyServer`: truncated request lines, oversized
headers, slow-loris trickles, garbage bytes.  The contract is a clean
4xx (400 malformed, 408 slow client, 413 oversized body) or a silent
close — never an unhandled exception in a connection task, which every
test asserts via the event loop's exception handler.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.serve import StrategyServer, build_index
from repro.study.dataset import PerfDataset

from tests.test_serve_server import http_request

GOLDEN_DATASET = "mini-dataset.json.gz"


@pytest.fixture(scope="module")
def index(goldens_dir):
    return build_index(
        PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))
    )


def run_hardened(coro_factory, index, **server_kwargs):
    """Run a test body against a live server, asserting that no
    connection task leaks an unhandled exception."""
    unhandled = []

    async def go():
        loop = asyncio.get_event_loop()
        loop.set_exception_handler(
            lambda _loop, ctx: unhandled.append(ctx)
        )
        server = StrategyServer(index, **server_kwargs)
        await server.start()
        try:
            result = await coro_factory(server)
            # A well-formed request must still succeed afterwards: the
            # server survived, it did not just swallow the connection.
            status, health, _ = await http_request(
                server.port, "GET", "/healthz"
            )
            assert status == 200
            assert health["status"] == "ok"
        finally:
            await server.stop()
        return result

    result = asyncio.run(go())
    assert unhandled == [], f"unhandled task exceptions: {unhandled}"
    return result


async def raw_exchange(port: int, payload: bytes, read_limit: int = 65536):
    """Write raw bytes, return whatever the server answers (b'' on
    silent close)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(payload)
        await writer.drain()
        return await asyncio.wait_for(reader.read(read_limit), 30)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def _status(response: bytes) -> int:
    return int(response.split(b"\r\n", 1)[0].split()[1])


class TestMalformedRequests:
    def test_garbage_bytes_get_400(self, index):
        async def body(server):
            resp = await raw_exchange(
                server.port, b"\x00\xffGARBAGE\x01\r\n\r\n"
            )
            assert _status(resp) == 400
            return resp

        run_hardened(body, index)

    def test_truncated_request_line_then_eof_closes_silently(self, index):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"GET /healthz HT")  # no newline, then EOF
            await writer.drain()
            writer.close()
            await writer.wait_closed()

        run_hardened(body, index)

    def test_request_line_with_wrong_shape_gets_400(self, index):
        async def body(server):
            resp = await raw_exchange(server.port, b"GETHTTP/1.1\r\n\r\n")
            assert _status(resp) == 400
            body_json = json.loads(resp.split(b"\r\n\r\n", 1)[1])
            assert "malformed request line" in body_json["error"]

        run_hardened(body, index)

    def test_oversized_request_line_gets_400(self, index):
        async def body(server):
            resp = await raw_exchange(
                server.port,
                b"GET /" + b"a" * (128 * 1024) + b" HTTP/1.1\r\n\r\n",
            )
            assert _status(resp) == 400

        run_hardened(body, index)

    def test_oversized_headers_get_400(self, index):
        async def body(server):
            head = b"GET /healthz HTTP/1.1\r\n"
            junk = b"".join(
                b"X-Padding-%d: %s\r\n" % (i, b"y" * 1000)
                for i in range(100)
            )
            resp = await raw_exchange(server.port, head + junk + b"\r\n")
            assert _status(resp) == 400
            assert b"too large" in resp or b"too long" in resp

        run_hardened(body, index)

    def test_bad_content_length_values_get_400(self, index):
        async def body(server):
            for value in (b"banana", b"-5"):
                resp = await raw_exchange(
                    server.port,
                    b"POST /v1/predict HTTP/1.1\r\n"
                    b"Content-Length: " + value + b"\r\n\r\n",
                )
                assert _status(resp) == 400

        run_hardened(body, index)

    def test_oversized_body_gets_413(self, index):
        async def body(server):
            resp = await raw_exchange(
                server.port,
                b"POST /v1/predict HTTP/1.1\r\n"
                b"Content-Length: 99999999\r\n\r\n",
            )
            assert _status(resp) == 413

        run_hardened(body, index)


class TestSlowLoris:
    def test_trickled_headers_time_out_as_408(self, index):
        """A client that starts a request and then drip-feeds header
        bytes cannot hold a connection past request_timeout."""

        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(b"GET /healthz HTTP/1.1\r\n")
                await writer.drain()
                # Trickle a few header bytes, then stall forever with
                # the request unfinished — the canonical slow-loris.
                # (Stop writing before the deadline: a client still
                # writing when the server resets would lose the 408 to
                # the RST.)
                for ch in b"X-Slow":
                    writer.write(bytes([ch]))
                    await writer.drain()
                    await asyncio.sleep(0.03)
                return await asyncio.wait_for(reader.read(65536), 30)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        resp = run_hardened(body, index, request_timeout=0.5)
        assert _status(resp) == 408
        assert b"slow client" in resp

    def test_idle_keepalive_closes_silently_not_408(self, index):
        """Idleness *between* requests is normal keep-alive behaviour:
        the connection is dropped without a status line."""

        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                # Never send anything: the idle timeout closes us.
                data = await asyncio.wait_for(reader.read(65536), 30)
                assert data == b""
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        run_hardened(body, index, idle_timeout=0.2)

    def test_trickled_body_times_out_as_408(self, index):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                writer.write(
                    b"POST /v1/predict HTTP/1.1\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                )
                await writer.drain()
                for _ in range(3):
                    writer.write(b"x")
                    await writer.drain()
                    await asyncio.sleep(0.03)
                # Stall with 997 body bytes outstanding.
                return await asyncio.wait_for(reader.read(65536), 30)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        resp = run_hardened(body, index, request_timeout=0.5)
        assert _status(resp) == 408

    def test_connection_counts_as_error_not_request(self, index):
        """Malformed requests count serve.errors, never serve.requests
        — the hardening layer sits in front of dispatch."""
        from repro.obs import Recorder

        recorder = Recorder()

        async def body(server):
            resp = await raw_exchange(server.port, b"NOT HTTP\r\n\r\n")
            assert _status(resp) == 400

        run_hardened(body, index, recorder=recorder)
        snap = recorder.snapshot()
        assert snap["counters"]["serve.errors"] == 1
        # Only the follow-up /healthz probe dispatched.
        assert snap["counters"]["serve.requests"] == 1
