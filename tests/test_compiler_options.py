"""Tests for the optimisation space (OptConfig and friends)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compiler import (
    BASELINE,
    OPT_NAMES,
    OptConfig,
    configs_with,
    describe_optimisation,
    disable_opt,
    enumerate_configs,
)
from repro.errors import InvalidConfigError


def config_strategy():
    return st.builds(
        OptConfig,
        coop_cv=st.booleans(),
        wg=st.booleans(),
        sg=st.booleans(),
        fg=st.sampled_from([None, 1, 8]),
        oitergb=st.booleans(),
        wg_size=st.sampled_from([128, 256]),
    )


class TestSpaceSize:
    def test_paper_counts(self):
        # 96 configurations; "95 optimisation combinations" + baseline.
        assert len(enumerate_configs()) == 96
        assert len(enumerate_configs(include_baseline=False)) == 95

    def test_no_duplicates(self):
        keys = [c.key() for c in enumerate_configs()]
        assert len(keys) == len(set(keys))

    def test_baseline_is_in_space(self):
        assert BASELINE in enumerate_configs()
        assert BASELINE.is_baseline


class TestNames:
    def test_roundtrip_names(self):
        for cfg in enumerate_configs():
            assert OptConfig.from_names(cfg.enabled_names()) == cfg

    def test_fg_variants_mutually_exclusive(self):
        with pytest.raises(InvalidConfigError):
            OptConfig.from_names({"fg", "fg8"})

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidConfigError):
            OptConfig.from_names({"turbo"})
        with pytest.raises(InvalidConfigError):
            BASELINE.has("turbo")

    def test_invalid_values_rejected(self):
        with pytest.raises(InvalidConfigError):
            OptConfig(fg=4)
        with pytest.raises(InvalidConfigError):
            OptConfig(wg_size=192)

    def test_label_ordering(self):
        cfg = OptConfig.from_names({"sz256", "wg", "coop-cv"})
        assert cfg.label() == "coop-cv, wg, sz256"
        assert BASELINE.label() == "baseline"

    def test_key_stable(self):
        cfg = OptConfig.from_names({"wg", "sg"})
        assert cfg.key() == "sg+wg"
        assert BASELINE.key() == "baseline"

    def test_describe_optimisation(self):
        for name in OPT_NAMES:
            assert describe_optimisation(name)
        with pytest.raises(InvalidConfigError):
            describe_optimisation("nope")


class TestMirrors:
    @given(config_strategy(), st.sampled_from(OPT_NAMES))
    def test_disable_opt_only_touches_target(self, cfg, name):
        mirror = disable_opt(cfg, name)
        assert not mirror.has(name)
        # Every other optimisation keeps its state.
        for other in OPT_NAMES:
            if other == name:
                continue
            assert mirror.has(other) == cfg.has(other)

    @given(st.sampled_from(OPT_NAMES))
    def test_configs_with_halves_the_space(self, name):
        enabled = configs_with(name)
        disabled = configs_with(name, enabled=False)
        assert len(enabled) + len(disabled) == 96
        assert all(c.has(name) for c in enabled)
        assert all(not c.has(name) for c in disabled)
        # fg/fg8 split the 3-valued axis; boolean axes split evenly.
        if name in ("fg", "fg8"):
            assert len(enabled) == 32
        else:
            assert len(enabled) == 48

    @given(st.sampled_from(OPT_NAMES))
    def test_mirror_is_bijective_into_disabled_set(self, name):
        mirrors = {disable_opt(c, name).key() for c in configs_with(name)}
        assert len(mirrors) == len(configs_with(name))

    def test_disable_fg_does_not_touch_fg8(self):
        cfg = OptConfig(fg=8)
        assert disable_opt(cfg, "fg") == cfg
        assert disable_opt(cfg, "fg8").fg is None

    def test_unknown_opt_rejected(self):
        with pytest.raises(InvalidConfigError):
            disable_opt(BASELINE, "nope")
        with pytest.raises(InvalidConfigError):
            configs_with("nope")


class TestSemantics:
    @given(config_strategy())
    def test_enabled_names_consistent_with_has(self, cfg):
        for name in OPT_NAMES:
            assert cfg.has(name) == (name in cfg.enabled_names())

    @given(config_strategy())
    def test_nested_parallelism_flag(self, cfg):
        assert cfg.uses_nested_parallelism == (
            cfg.wg or cfg.sg or cfg.fg is not None
        )
