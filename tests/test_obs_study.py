"""Metrics-correctness tests: the study's counters must reconcile.

The invariant under test everywhere: for any single run,

    study.shards.priced + study.shards.skipped_checkpoint
        == study.shards.total

with no double counting — across fresh runs, parallel runs, resumed
runs and fault-injected runs — and a parallel run's merged RunReport
must agree with a serial run's on every placement-independent total.
"""

from __future__ import annotations

import os

import pytest

from repro import Recorder, RunReport, StudyConfig, run_study
from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.compiler.pipeline import plan_cache
from repro.faults import FaultPlan
from repro.graphs.inputs import StudyInput
from repro.graphs import rmat_graph
from repro.runtime import trace as trace_mod
from repro.study.checkpoint import StudyCheckpoint
from repro.study.runner import collect_traces


@pytest.fixture(scope="module")
def small_config() -> StudyConfig:
    rmat_a = rmat_graph(7, edge_factor=8, seed=9, name="obs-rmat-a")
    rmat_b = rmat_graph(7, edge_factor=8, seed=11, name="obs-rmat-b")
    return StudyConfig(
        apps=[get_application("bfs-topo"), get_application("pr-topo")],
        inputs={
            "obs-rmat-a": StudyInput(
                name="obs-rmat-a",
                input_class="social",
                description="obs test input a",
                _builder=lambda: rmat_a,
            ),
            "obs-rmat-b": StudyInput(
                name="obs-rmat-b",
                input_class="social",
                description="obs test input b",
                _builder=lambda: rmat_b,
            ),
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[:6],
        repetitions=2,
    )


@pytest.fixture(scope="module")
def small_traces(small_config):
    return collect_traces(small_config)


@pytest.fixture(autouse=True)
def _fresh_process_caches():
    """Clear the process-global caches so each run's cache-delta
    counters start from a clean slate (mirrors bench_study)."""
    plan_cache.clear()
    trace_mod.memo_stats.reset()
    yield


def _grid_size(config: StudyConfig) -> int:
    return len(config.chips) * len(config.configs)


def _reconciles(rec: Recorder, config: StudyConfig) -> None:
    report = RunReport.from_recorder(rec)
    priced = report.counter("study.shards.priced")
    skipped = report.counter("study.shards.skipped_checkpoint")
    assert priced + skipped == report.gauges["study.shards.total"]
    assert report.gauges["study.shards.total"] == _grid_size(config)


def test_fresh_serial_run_reconciles(small_config, small_traces):
    rec = Recorder(clock=lambda: 0.0)
    run_study(small_config, traces=small_traces, jobs=1, recorder=rec)
    _reconciles(rec, small_config)
    assert rec.counter_value("study.shards.priced") == _grid_size(small_config)
    assert rec.counter_value("study.shards.skipped_checkpoint") == 0
    # One span per shard, attributed to its chip.
    shard_spans = [s for s in rec.spans if s.name == "study.price_shard"]
    assert len(shard_spans) == _grid_size(small_config)
    chips = {s.attrs["chip"] for s in shard_spans}
    assert chips == {c.short_name for c in small_config.chips}
    # The pricing compiles each (chip, config) plan once, then hits.
    misses = rec.counter_value("compiler.plan_cache.misses")
    hits = rec.counter_value("compiler.plan_cache.hits")
    assert misses == _grid_size(small_config) * len(small_config.apps)
    assert hits > 0


def test_parallel_totals_match_serial(small_config, small_traces):
    serial = Recorder(clock=lambda: 0.0)
    ds1 = run_study(small_config, traces=small_traces, jobs=1, recorder=serial)

    plan_cache.clear()
    trace_mod.memo_stats.reset()
    parallel = Recorder(clock=lambda: 0.0)
    ds2 = run_study(
        small_config, traces=small_traces, jobs=2, recorder=parallel
    )

    assert ds1 == ds2  # datasets identical regardless of job count
    _reconciles(parallel, small_config)
    for name in (
        "study.shards.priced",
        "study.shards.skipped_checkpoint",
        "study.shards.retried",
        "study.pool.rebuilds",
    ):
        assert parallel.counter_value(name) == serial.counter_value(name), name
    # Cache hit/miss *splits* depend on process placement (workers may
    # inherit warm caches under fork), but every lookup happens exactly
    # once per shard regardless, so the totals are placement-independent.
    for prefix in ("compiler.plan_cache", "perfmodel.memo"):
        assert (
            parallel.counter_value(f"{prefix}.hits")
            + parallel.counter_value(f"{prefix}.misses")
        ) == (
            serial.counter_value(f"{prefix}.hits")
            + serial.counter_value(f"{prefix}.misses")
        ), prefix
    # Worker spans survive the process boundary into the merged report.
    shard_spans = [s for s in parallel.spans if s.name == "study.price_shard"]
    assert len(shard_spans) == _grid_size(small_config)


@pytest.mark.parametrize("jobs", [1, 2])
def test_interrupted_then_resumed_run_reconciles(
    small_config, small_traces, tmp_path, jobs
):
    ckpt_dir = str(tmp_path / "ckpt")
    faults = FaultPlan(str(tmp_path / "faults"))
    faults.arm("interrupt", "shard-0-3")

    first = Recorder(clock=lambda: 0.0)
    with pytest.raises(KeyboardInterrupt):
        run_study(
            small_config,
            traces=small_traces,
            jobs=jobs,
            checkpoint=ckpt_dir,
            recorder=first,
            faults=faults,
        )
    interrupted_priced = first.counter_value("study.shards.priced")
    # (With jobs=2 the armed shard can in principle finish last, so the
    # upper bound is inclusive.)
    assert 0 < interrupted_priced <= _grid_size(small_config)

    # The metrics sidecar persisted alongside the shards.
    segments = StudyCheckpoint(ckpt_dir).load_metrics()
    assert segments
    assert (
        segments[-1]["counters"]["study.shards.priced"] == interrupted_priced
    )

    plan_cache.clear()
    trace_mod.memo_stats.reset()
    second = Recorder(clock=lambda: 0.0)
    run_study(
        small_config,
        traces=small_traces,
        jobs=jobs,
        checkpoint=ckpt_dir,
        resume=True,
        recorder=second,
    )
    _reconciles(second, small_config)
    report = RunReport.from_recorder(second)
    # This run skipped exactly what the interrupted run priced...
    assert (
        report.counter("study.shards.skipped_checkpoint")
        == interrupted_priced
    )
    # ...and the merged view over both runs covers the grid exactly once.
    assert report.prior
    assert (
        report.total_counter("study.shards.priced")
        == _grid_size(small_config)
    )


def test_fault_injected_retries_are_counted(
    small_config, small_traces, tmp_path
):
    faults = FaultPlan(str(tmp_path / "faults"))
    faults.arm("error", "shard-0-1")
    faults.arm("error", "shard-1-2")
    rec = Recorder(clock=lambda: 0.0)
    ds = run_study(
        small_config,
        traces=small_traces,
        jobs=2,
        recorder=rec,
        faults=faults,
        backoff=0.0,
    )
    _reconciles(rec, small_config)
    assert rec.counter_value("study.shards.priced") == _grid_size(small_config)
    assert rec.counter_value("study.shards.retried") == 2
    assert len(ds) > 0


def test_disabled_recorder_records_nothing(small_config, small_traces):
    from repro.obs import NULL_RECORDER

    ds = run_study(small_config, traces=small_traces, jobs=1)
    assert NULL_RECORDER.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }
    assert len(ds) > 0


def test_analysis_counters_flow_through_run_report(mini_dataset):
    from repro.core.algorithm1 import Analysis

    rec = Recorder(clock=lambda: 0.0)
    analysis = Analysis(mini_dataset, recorder=rec)
    analysis.specialise(("chip",))
    report = RunReport.from_recorder(rec)
    assert report.counter("analysis.mwu.tests") > 0
    assert (
        report.counter("analysis.filter.significant")
        + report.counter("analysis.filter.insignificant")
        > 0
    )
    assert report.counter("analysis.welch_intervals") == 0  # not scoped
    spans = [s for s in rec.spans if s.name == "analysis.specialise"]
    assert len(spans) == 1
    assert spans[0].attrs["level"] == "chip"
    assert spans[0].attrs["partitions"] == 3  # one per chip
    assert spans[0].attrs["mwu_tests"] == rec.counter_value(
        "analysis.mwu.tests"
    )


def test_welch_intervals_counted_under_recording_scope(mini_dataset):
    from repro import obs
    from repro.core.algorithm1 import Analysis

    rec = Recorder(clock=lambda: 0.0)
    with obs.recording(rec):
        Analysis(mini_dataset).specialise(())
    assert rec.counter_value("analysis.welch_intervals") > 0
    assert rec.counter_value("analysis.mwu.tests") > 0
