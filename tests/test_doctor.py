"""``repro doctor``: checkpoint and dataset diagnosis."""

import json
import os

import pytest

from repro.compiler.options import OptConfig
from repro.errors import DatasetError
from repro.study.checkpoint import StudyCheckpoint
from repro.study.dataset import PerfDataset, TestCase
from repro.study.doctor import (
    diagnose_checkpoint,
    diagnose_dataset,
    export_partial_dataset,
    main,
)

FP = "ab" * 8


def _make_checkpoint(directory, missing=(), axes=True):
    """A 2-chip x 3-config checkpoint with optional holes."""
    cp = StudyCheckpoint(str(directory))
    kwargs = (
        {"chips": ["gtx1080", "mali"], "configs": ["baseline", "wg", "wg+sg"]}
        if axes
        else {}
    )
    cp.open(FP, 2, 3, resume=False, **kwargs)
    for chip in range(2):
        for cfg in range(3):
            if (chip, cfg) in missing:
                continue
            cp.record(
                (chip, cfg),
                [("bfs", "road", [1.0, 2.0]), ("sssp", "road", [3.0])],
            )
    return cp


class TestCheckpointDiagnosis:
    def test_healthy_full_checkpoint(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert not diag.repair_plan
        assert "USABLE" in diag.render()

    def test_healthy_partial_is_usable_with_repair_plan(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", missing={(1, 2)})
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok  # partial but intact: exit zero
        assert any("--resume" in step for step in diag.repair_plan)
        assert any("chip 1" in step for step in diag.repair_plan)

    def test_stale_fingerprint_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        diag = diagnose_checkpoint(
            str(tmp_path / "ck"), expected_fingerprint="cd" * 8
        )
        assert not diag.ok
        assert any(f.code == "fingerprint-stale" for f in diag.findings)

    def test_malformed_fingerprint_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        manifest_path = tmp_path / "ck" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["fingerprint"] = "not-hex"
        manifest_path.write_text(json.dumps(manifest))
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert any(f.code == "fingerprint-malformed" for f in diag.findings)

    def test_truncated_shard_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0000-0001.json"
        shard.write_text(shard.read_text()[:20])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert not diag.ok
        assert any(
            f.code == "shard-corrupt" and "0001" in f.message
            for f in diag.errors
        )

    def test_bad_checksum_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0001-0000.json"
        payload = json.loads(shard.read_text())
        payload["checksum"] = "0" * 64
        shard.write_text(json.dumps(payload))
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert any("checksum mismatch" in f.message for f in diag.errors)

    def test_out_of_grid_shard_is_orphan_warning(self, tmp_path):
        cp = _make_checkpoint(tmp_path / "ck")
        cp.record((7, 7), [("bfs", "road", [1.0])])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok  # a warning, not an error
        assert any(f.code == "shard-orphan" for f in diag.findings)

    def test_missing_manifest_is_unusable(self, tmp_path):
        (tmp_path / "ck").mkdir()
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert not diag.ok
        assert any(f.code == "manifest" for f in diag.errors)

    def test_damaged_metrics_is_warning_only(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        (tmp_path / "ck" / "metrics.json").write_text("{garbage")
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert any(f.code == "metrics-damaged" for f in diag.findings)

    def test_metrics_shard_count_mismatch_is_warning(self, tmp_path):
        cp = _make_checkpoint(tmp_path / "ck")
        cp.save_metrics([{"counters": {"study.shards.priced": 99}}])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert any(f.code == "metrics-mismatch" for f in diag.findings)


class TestPartialExport:
    def test_export_assembles_valid_shards(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", missing={(1, 2)})
        ds = export_partial_dataset(str(tmp_path / "ck"))
        # 5 shards x 2 traces each.
        assert ds.n_measurements == 10
        assert ds.times_or_none(
            TestCase("bfs", "road", "gtx1080"), OptConfig()
        ) == (1.0, 2.0)
        # The missing shard's cell stays a hole.
        assert (
            ds.times_or_none(
                TestCase("bfs", "road", "mali"),
                OptConfig.from_names(["wg", "sg"]),
            )
            is None
        )

    def test_export_skips_corrupt_shards(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        (tmp_path / "ck" / "shard-0000-0000.json").write_text("{")
        ds = export_partial_dataset(str(tmp_path / "ck"))
        assert ds.n_measurements == 10

    def test_export_requires_axis_names(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", axes=False)
        with pytest.raises(DatasetError, match="axis names"):
            export_partial_dataset(str(tmp_path / "ck"))


class TestDatasetDiagnosis:
    def _dataset_file(self, tmp_path):
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0, 2.0))
        path = str(tmp_path / "d.json")
        ds.save(path)
        return path

    def test_healthy_dataset(self, tmp_path):
        diag = diagnose_dataset(self._dataset_file(tmp_path))
        assert diag.ok
        assert any(f.code == "coverage" for f in diag.findings)

    def test_corrupt_dataset_is_unusable(self, tmp_path):
        path = self._dataset_file(tmp_path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text[: len(text) // 2])
        diag = diagnose_dataset(path)
        assert not diag.ok
        assert any(f.code == "unloadable" for f in diag.errors)

    def test_legacy_format_is_warning(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as f:
            json.dump({"measurements": []}, f)
        diag = diagnose_dataset(path)
        assert any(f.code == "format-legacy" for f in diag.findings)


class TestDoctorCLI:
    def test_healthy_checkpoint_exits_zero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        assert main([str(tmp_path / "ck")]) == 0
        assert "USABLE" in capsys.readouterr().out

    def test_corrupted_checkpoint_exits_nonzero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0000-0000.json"
        shard.write_text(shard.read_text()[:10])
        assert main([str(tmp_path / "ck")]) == 1
        assert "UNUSABLE" in capsys.readouterr().out

    def test_stale_fingerprint_exits_nonzero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        assert main([str(tmp_path / "ck"), "--fingerprint", "cd" * 8]) == 1
        capsys.readouterr()

    def test_export_flag(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck", missing={(0, 1)})
        out = str(tmp_path / "part.json")
        assert main([str(tmp_path / "ck"), "--export", out]) == 0
        assert "exported" in capsys.readouterr().out
        assert PerfDataset.load(out).n_measurements == 10

    def test_audit_json_flag(self, tmp_path, capsys):
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0,))
        path = str(tmp_path / "d.json")
        ds.save(path)
        out = str(tmp_path / "audit.json")
        assert main([path, "--audit-json", out]) == 0
        capsys.readouterr()
        with open(out) as f:
            assert json.load(f)["format"] == "audit-v1"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_export_requires_checkpoint(self, tmp_path, capsys):
        path = str(tmp_path / "d.json")
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0,))
        ds.save(path)
        assert main([path, "--export", str(tmp_path / "x.json")]) == 2
        capsys.readouterr()

    def test_dispatched_from_top_level_cli(self, tmp_path, capsys):
        from repro.__main__ import main as top_main

        _make_checkpoint(tmp_path / "ck")
        assert top_main(["doctor", str(tmp_path / "ck")]) == 0
        capsys.readouterr()
