"""``repro doctor``: checkpoint and dataset diagnosis."""

import json
import os

import pytest

from repro.compiler.options import OptConfig
from repro.errors import DatasetError
from repro.study.checkpoint import StudyCheckpoint
from repro.study.dataset import PerfDataset, TestCase
from repro.study.doctor import (
    diagnose_checkpoint,
    diagnose_dataset,
    export_partial_dataset,
    main,
)

FP = "ab" * 8


def _make_checkpoint(directory, missing=(), axes=True):
    """A 2-chip x 3-config checkpoint with optional holes."""
    cp = StudyCheckpoint(str(directory))
    kwargs = (
        {"chips": ["gtx1080", "mali"], "configs": ["baseline", "wg", "wg+sg"]}
        if axes
        else {}
    )
    cp.open(FP, 2, 3, resume=False, **kwargs)
    for chip in range(2):
        for cfg in range(3):
            if (chip, cfg) in missing:
                continue
            cp.record(
                (chip, cfg),
                [("bfs", "road", [1.0, 2.0]), ("sssp", "road", [3.0])],
            )
    return cp


class TestCheckpointDiagnosis:
    def test_healthy_full_checkpoint(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert not diag.repair_plan
        assert "USABLE" in diag.render()

    def test_healthy_partial_is_usable_with_repair_plan(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", missing={(1, 2)})
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok  # partial but intact: exit zero
        assert any("--resume" in step for step in diag.repair_plan)
        assert any("chip 1" in step for step in diag.repair_plan)

    def test_stale_fingerprint_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        diag = diagnose_checkpoint(
            str(tmp_path / "ck"), expected_fingerprint="cd" * 8
        )
        assert not diag.ok
        assert any(f.code == "fingerprint-stale" for f in diag.findings)

    def test_malformed_fingerprint_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        manifest_path = tmp_path / "ck" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["fingerprint"] = "not-hex"
        manifest_path.write_text(json.dumps(manifest))
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert any(f.code == "fingerprint-malformed" for f in diag.findings)

    def test_truncated_shard_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0000-0001.json"
        shard.write_text(shard.read_text()[:20])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert not diag.ok
        assert any(
            f.code == "shard-corrupt" and "0001" in f.message
            for f in diag.errors
        )

    def test_bad_checksum_detected(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0001-0000.json"
        payload = json.loads(shard.read_text())
        payload["checksum"] = "0" * 64
        shard.write_text(json.dumps(payload))
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert any("checksum mismatch" in f.message for f in diag.errors)

    def test_out_of_grid_shard_is_orphan_warning(self, tmp_path):
        cp = _make_checkpoint(tmp_path / "ck")
        cp.record((7, 7), [("bfs", "road", [1.0])])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok  # a warning, not an error
        assert any(f.code == "shard-orphan" for f in diag.findings)

    def test_missing_manifest_is_unusable(self, tmp_path):
        (tmp_path / "ck").mkdir()
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert not diag.ok
        assert any(f.code == "manifest" for f in diag.errors)

    def test_damaged_metrics_is_warning_only(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        (tmp_path / "ck" / "metrics.json").write_text("{garbage")
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert any(f.code == "metrics-damaged" for f in diag.findings)

    def test_metrics_shard_count_mismatch_is_warning(self, tmp_path):
        cp = _make_checkpoint(tmp_path / "ck")
        cp.save_metrics([{"counters": {"study.shards.priced": 99}}])
        diag = diagnose_checkpoint(str(tmp_path / "ck"))
        assert diag.ok
        assert any(f.code == "metrics-mismatch" for f in diag.findings)


class TestPartialExport:
    def test_export_assembles_valid_shards(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", missing={(1, 2)})
        ds = export_partial_dataset(str(tmp_path / "ck"))
        # 5 shards x 2 traces each.
        assert ds.n_measurements == 10
        assert ds.times_or_none(
            TestCase("bfs", "road", "gtx1080"), OptConfig()
        ) == (1.0, 2.0)
        # The missing shard's cell stays a hole.
        assert (
            ds.times_or_none(
                TestCase("bfs", "road", "mali"),
                OptConfig.from_names(["wg", "sg"]),
            )
            is None
        )

    def test_export_skips_corrupt_shards(self, tmp_path):
        _make_checkpoint(tmp_path / "ck")
        (tmp_path / "ck" / "shard-0000-0000.json").write_text("{")
        ds = export_partial_dataset(str(tmp_path / "ck"))
        assert ds.n_measurements == 10

    def test_export_requires_axis_names(self, tmp_path):
        _make_checkpoint(tmp_path / "ck", axes=False)
        with pytest.raises(DatasetError, match="axis names"):
            export_partial_dataset(str(tmp_path / "ck"))


class TestDatasetDiagnosis:
    def _dataset_file(self, tmp_path):
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0, 2.0))
        path = str(tmp_path / "d.json")
        ds.save(path)
        return path

    def test_healthy_dataset(self, tmp_path):
        diag = diagnose_dataset(self._dataset_file(tmp_path))
        assert diag.ok
        assert any(f.code == "coverage" for f in diag.findings)

    def test_corrupt_dataset_is_unusable(self, tmp_path):
        path = self._dataset_file(tmp_path)
        with open(path) as f:
            text = f.read()
        with open(path, "w") as f:
            f.write(text[: len(text) // 2])
        diag = diagnose_dataset(path)
        assert not diag.ok
        assert any(f.code == "unloadable" for f in diag.errors)

    def test_legacy_format_is_warning(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as f:
            json.dump({"measurements": []}, f)
        diag = diagnose_dataset(path)
        assert any(f.code == "format-legacy" for f in diag.findings)


class TestDoctorCLI:
    def test_healthy_checkpoint_exits_zero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        assert main([str(tmp_path / "ck")]) == 0
        assert "USABLE" in capsys.readouterr().out

    def test_corrupted_checkpoint_exits_nonzero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        shard = tmp_path / "ck" / "shard-0000-0000.json"
        shard.write_text(shard.read_text()[:10])
        assert main([str(tmp_path / "ck")]) == 1
        assert "UNUSABLE" in capsys.readouterr().out

    def test_stale_fingerprint_exits_nonzero(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck")
        assert main([str(tmp_path / "ck"), "--fingerprint", "cd" * 8]) == 1
        capsys.readouterr()

    def test_export_flag(self, tmp_path, capsys):
        _make_checkpoint(tmp_path / "ck", missing={(0, 1)})
        out = str(tmp_path / "part.json")
        assert main([str(tmp_path / "ck"), "--export", out]) == 0
        assert "exported" in capsys.readouterr().out
        assert PerfDataset.load(out).n_measurements == 10

    def test_audit_json_flag(self, tmp_path, capsys):
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0,))
        path = str(tmp_path / "d.json")
        ds.save(path)
        out = str(tmp_path / "audit.json")
        assert main([path, "--audit-json", out]) == 0
        capsys.readouterr()
        with open(out) as f:
            assert json.load(f)["format"] == "audit-v1"

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        capsys.readouterr()

    def test_export_requires_checkpoint(self, tmp_path, capsys):
        path = str(tmp_path / "d.json")
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0,))
        ds.save(path)
        assert main([path, "--export", str(tmp_path / "x.json")]) == 2
        capsys.readouterr()

    def test_dispatched_from_top_level_cli(self, tmp_path, capsys):
        from repro.__main__ import main as top_main

        _make_checkpoint(tmp_path / "ck")
        assert top_main(["doctor", str(tmp_path / "ck")]) == 0
        capsys.readouterr()


class TestRunReportDiagnosis:
    """ISSUE 9: the doctor understands run-report-v1 sidecars — the
    serve fleet's merged metrics — with the same severity model:
    structural damage is an error, counter non-reconciliation a
    warning, and a clean fleet report is healthy."""

    @staticmethod
    def _save_report(path, counters, meta):
        from repro.obs.report import RunReport

        RunReport(counters=counters, meta=meta).save(str(path))
        return str(path)

    def _fleet_report(self, path, **overrides):
        counters = {
            "serve.requests": 10,
            "serve.requests.strategy": 7,
            "serve.requests.predict": 2,
            "serve.workers.deaths": 1,
            "serve.workers.restarts": 1,
            "serve.reload.attempts": 2,
            "serve.reload.success": 1,
            "serve.reload.failures": 1,
        }
        meta = {
            "requests": 10,
            "workers": 2,
            "deaths": 1,
            "restarts": 1,
            "per_worker_requests": {"0": 6, "1": 4},
        }
        counters.update(overrides.pop("counters", {}))
        meta.update(overrides.pop("meta", {}))
        return self._save_report(path, counters, meta)

    def test_healthy_fleet_report_is_usable(self, tmp_path):
        from repro.study.doctor import diagnose, diagnose_run_report

        path = self._fleet_report(tmp_path / "report.json")
        diag = diagnose(path)  # dispatch sniffs the format tag
        assert diag.kind == "run-report"
        assert diag.ok
        assert [f.severity for f in diag.findings] == ["info"]
        assert "2 worker(s)" in diag.findings[0].message
        assert diagnose_run_report(path).ok

    def test_truncated_report_is_an_error(self, tmp_path):
        from repro.study.doctor import diagnose

        path = self._fleet_report(tmp_path / "report.json")
        with open(path, "r+") as f:
            text = f.read()
            f.seek(0)
            f.truncate()
            f.write(text[: len(text) // 2])
        diag = diagnose(path)
        assert diag.kind == "run-report"
        assert not diag.ok
        assert diag.findings[0].code == "unloadable"
        assert diag.repair_plan

    def test_checksum_mismatch_is_an_error(self, tmp_path):
        from repro.study.doctor import diagnose

        path = self._fleet_report(tmp_path / "report.json")
        with open(path) as f:
            parsed = json.load(f)
        parsed["report"]["counters"]["serve.requests"] = 9999
        with open(path, "w") as f:
            json.dump(parsed, f)
        diag = diagnose(path)
        assert not diag.ok
        assert "checksum" in diag.findings[0].message

    def test_lost_worker_delta_is_a_warning(self, tmp_path):
        """meta.requests (the per-worker ledger) disagreeing with the
        merged counter means a final delta was lost — degraded
        telemetry, not an unusable artifact."""
        from repro.study.doctor import diagnose_run_report

        path = self._fleet_report(
            tmp_path / "report.json",
            counters={"serve.requests": 8, "serve.requests.strategy": 5},
        )
        diag = diagnose_run_report(path)
        assert diag.ok  # warnings only
        codes = [f.code for f in diag.findings]
        assert "requests-mismatch" in codes
        assert diag.repair_plan

    def test_per_worker_ledger_mismatch_is_a_warning(self, tmp_path):
        from repro.study.doctor import diagnose_run_report

        path = self._fleet_report(
            tmp_path / "report.json",
            meta={"per_worker_requests": {"0": 6, "1": 3}},
        )
        diag = diagnose_run_report(path)
        assert "per-worker-mismatch" in [f.code for f in diag.findings]

    def test_fleet_provenance_mismatches_warn(self, tmp_path):
        from repro.study.doctor import diagnose_run_report

        path = self._fleet_report(
            tmp_path / "report.json",
            counters={"serve.workers.restarts": 3},
        )
        diag = diagnose_run_report(path)
        codes = [f.code for f in diag.findings]
        # meta.restarts disagrees AND restarts > deaths: both warned.
        assert codes.count("fleet-mismatch") == 2

    def test_reload_counter_imbalance_warns(self, tmp_path):
        from repro.study.doctor import diagnose_run_report

        path = self._fleet_report(
            tmp_path / "report.json",
            counters={"serve.reload.attempts": 5},
        )
        diag = diagnose_run_report(path)
        assert "counter-mismatch" in [f.code for f in diag.findings]

    def test_non_serve_report_has_no_reconciliation_rules(self, tmp_path):
        from repro.study.doctor import diagnose_run_report

        path = self._save_report(
            tmp_path / "study.json",
            {"study.shards.priced": 12},
            {"engine": "batch"},
        )
        diag = diagnose_run_report(path)
        assert diag.ok
        assert "no reconciliation rules apply" in diag.findings[0].message

    def test_datasets_still_route_to_dataset_diagnosis(self, tmp_path):
        from repro.study.doctor import diagnose

        path = str(tmp_path / "dataset.json")
        ds = PerfDataset()
        ds.add(TestCase("bfs", "road", "c0"), OptConfig(), (1.0,))
        ds.save(path)
        assert diagnose(path).kind == "dataset"

    def test_cli_exit_codes_for_reports(self, tmp_path, capsys):
        good = self._fleet_report(tmp_path / "good.json")
        assert main([good]) == 0
        bad = self._fleet_report(tmp_path / "bad.json")
        with open(bad, "r+") as f:
            f.truncate(40)
        assert main([bad]) == 1
        out = capsys.readouterr().out
        assert "run-report" in out
        # Report-kind paths refuse checkpoint/dataset-only flags.
        assert main([good, "--export", str(tmp_path / "x.json")]) == 2
        assert main([good, "--audit-json", str(tmp_path / "a.json")]) == 2
        capsys.readouterr()
