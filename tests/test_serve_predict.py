"""Tests for the online single-point predictor behind ``/v1/predict``."""

from __future__ import annotations

import pytest

from repro import StudyConfig, run_study
from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler.options import OptConfig
from repro.errors import PredictionError
from repro.graphs import study_inputs
from repro.serve import Predictor
from repro.study.dataset import TestCase

SCALE = 0.05


@pytest.fixture(scope="module")
def predictor() -> Predictor:
    return Predictor(scale=SCALE, repetitions=3)


class TestPrice:
    def test_matches_the_study_exactly(self, predictor):
        """An online prediction for a point the study measured returns
        exactly the study's numbers — same engine, same seeded noise."""
        inputs = {
            k: v
            for k, v in study_inputs(scale=SCALE).items()
            if k == "rmat-sim"
        }
        config = StudyConfig(
            apps=[get_application("bfs-wl")],
            inputs=inputs,
            chips=[get_chip("MALI")],
            configs=[OptConfig(), OptConfig.from_names(["sg", "wg"])],
            scale=SCALE,
        )
        dataset = run_study(config, progress=lambda m: None)
        test = TestCase("bfs-wl", "rmat-sim", "MALI")
        for cfg in config.configs:
            result = predictor.price("MALI", "bfs-wl", "rmat-sim", cfg)
            assert tuple(result["times_us"]) == dataset.times(test, cfg)

    def test_result_shape_and_determinism(self, predictor):
        cfg = OptConfig.from_names(["wg"])
        first = predictor.price("GTX1080", "pr-topo", "uniform-sim", cfg)
        again = predictor.price("GTX1080", "pr-topo", "uniform-sim", cfg)
        assert first == again  # memoised trace, seeded noise
        assert first["chip"] == "GTX1080"
        assert first["config"] == "wg"
        assert first["predicted_us"] > 0
        assert len(first["times_us"]) == first["repetitions"] == 3
        assert all(t > 0 for t in first["times_us"])

    def test_unknown_coordinates_raise(self, predictor):
        cfg = OptConfig()
        with pytest.raises(PredictionError, match="chip"):
            predictor.price("TPU9000", "bfs-wl", "rmat-sim", cfg)
        with pytest.raises(PredictionError, match="unknown application"):
            predictor.price("MALI", "bfs", "rmat-sim", cfg)
        with pytest.raises(PredictionError, match="unknown input"):
            predictor.price("MALI", "bfs-wl", "twitter2010", cfg)

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            Predictor(repetitions=0)


class TestPriceMany:
    def test_batched_results_equal_per_item_price_exactly(self, predictor):
        """Coalescing is invisible in the numbers: one locked vectorized
        pass returns exactly what per-item ``price`` calls would."""
        points = [
            ("MALI", "bfs-wl", "rmat-sim", OptConfig()),
            ("GTX1080", "pr-topo", "uniform-sim", OptConfig.from_names(["wg"])),
            ("MALI", "bfs-wl", "rmat-sim", OptConfig.from_names(["sg", "wg"])),
        ]
        singles = [predictor.price(*p) for p in points]
        batched = predictor.price_many(points)
        assert batched == singles

    def test_errors_are_values_and_never_abort_the_batch(self, predictor):
        points = [
            ("MALI", "bfs-wl", "rmat-sim", OptConfig()),
            ("TPU9000", "bfs-wl", "rmat-sim", OptConfig()),
            ("MALI", "nope", "rmat-sim", OptConfig()),
            ("GTX1080", "pr-topo", "uniform-sim", OptConfig()),
        ]
        results = predictor.price_many(points)
        assert isinstance(results[0], dict)
        assert isinstance(results[1], PredictionError)
        assert "chip" in str(results[1])
        assert isinstance(results[2], PredictionError)
        assert "unknown application" in str(results[2])
        assert isinstance(results[3], dict)

    def test_empty_batch(self, predictor):
        assert predictor.price_many([]) == []


class TestParseConfig:
    def test_accepts_dataset_key_syntax(self):
        assert Predictor.parse_config("baseline") == OptConfig()
        cfg = Predictor.parse_config("wg+sg")
        assert cfg.key() == "sg+wg"

    @pytest.mark.parametrize("bad", ["", None, 7, "warp9", "wg++sg"])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(PredictionError):
            Predictor.parse_config(bad)
