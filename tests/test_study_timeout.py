"""Hung-shard watchdog: ``shard_timeout`` deadline, quarantine, resume.

Uses the ``slow`` fault (a worker sleeping far past the deadline) to
drive the watchdog deterministically.  A ``slow`` token is consumed
exactly once, so a timed-out shard that is re-queued prices normally on
its second attempt; quarantine is exercised with ``retries=0`` where
the first timeout already exhausts the budget.
"""

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.faults import FaultPlan
from repro.graphs import rmat_graph
from repro.graphs.inputs import StudyInput
from repro.obs import Recorder
from repro.study import StudyConfig, run_study
from repro.study.checkpoint import StudyCheckpoint

#: Far past any deadline used here: a hung worker, if not terminated,
#: would blow the suite's runtime.
HANG = 120.0


@pytest.fixture(scope="module")
def tiny_config() -> StudyConfig:
    """1 app x 1 input x 2 chips x 4 configurations: 8 shards."""
    graph = rmat_graph(6, edge_factor=6, seed=3, name="t-rmat")
    return StudyConfig(
        apps=[get_application("bfs-wl")],
        inputs={
            "t-rmat": StudyInput(
                name="t-rmat",
                input_class="social",
                description="timeout test rmat",
                _builder=lambda: graph,
            )
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[::24],
    )


@pytest.fixture(scope="module")
def baseline(tiny_config):
    return run_study(tiny_config, jobs=1)


class TestWatchdog:
    def test_timed_out_shard_requeued_and_completes(
        self, tiny_config, baseline, tmp_path
    ):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "shard-0-1", param=HANG)
        rec = Recorder()
        dataset = run_study(
            tiny_config,
            jobs=2,
            faults=plan,
            retries=2,
            shard_timeout=0.5,
            recorder=rec,
        )
        # The slow token fired once; the re-queued shard priced clean.
        assert dataset == baseline
        assert rec.counter_value("study.shards.timeout") >= 1
        assert rec.counter_value("study.shards.quarantined") == 0

    def test_exhausted_budget_quarantines_shard(
        self, tiny_config, baseline, tmp_path
    ):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "shard-0-1", param=HANG)
        ckpt = StudyCheckpoint(str(tmp_path / "ck"))
        rec = Recorder()
        dataset = run_study(
            tiny_config,
            jobs=2,
            faults=plan,
            retries=0,
            shard_timeout=0.5,
            checkpoint=ckpt,
            recorder=rec,
        )
        assert rec.counter_value("study.shards.timeout") == 1
        assert rec.counter_value("study.shards.quarantined") == 1
        assert ckpt.quarantined_tasks == [(0, 1)]
        # The quarantined shard's cells are holes, everything else matches.
        assert dataset.n_measurements == baseline.n_measurements - 1
        assert not dataset.coverage().complete
        hung_cfg = tiny_config.configs[1]
        for test in baseline.tests:
            if test.chip == tiny_config.chips[0].short_name:
                assert dataset.times_or_none(test, hung_cfg) is None

    def test_resume_reprices_only_quarantined_shards(
        self, tiny_config, baseline, tmp_path
    ):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "shard-1-2", param=HANG)
        ckpt_dir = str(tmp_path / "ck")
        partial = run_study(
            tiny_config,
            jobs=2,
            faults=plan,
            retries=0,
            shard_timeout=0.5,
            checkpoint=ckpt_dir,
        )
        assert partial.n_measurements == baseline.n_measurements - 1
        # The checkpoint holds every shard except the quarantined one.
        rec = Recorder()
        resumed = run_study(
            tiny_config,
            jobs=2,
            checkpoint=ckpt_dir,
            resume=True,
            recorder=rec,
        )
        assert resumed == baseline
        assert rec.counter_value("study.shards.skipped_checkpoint") == 7
        assert rec.counter_value("study.shards.priced") == 1

    def test_shard_timeout_validated(self, tiny_config):
        with pytest.raises(ValueError, match="shard_timeout"):
            run_study(tiny_config, jobs=2, shard_timeout=0.0)

    def test_serial_mode_ignores_timeout(self, tiny_config, baseline):
        # jobs=1 never arms the watchdog; the parameter is accepted and
        # the sweep matches the baseline.
        dataset = run_study(tiny_config, jobs=1, shard_timeout=5.0)
        assert dataset == baseline
