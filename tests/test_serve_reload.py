"""In-process tests for index hot-reload (SIGHUP / POST /admin/reload).

The contract under test: a reload re-reads ``index_path``, validates
the candidate through the same checksum + format-tag gauntlet as
:meth:`StrategyIndex.load`, and atomically swaps it in (generation
bump, response cache cleared).  *Any* validation failure — truncated
file, garbled bytes, a chaos-armed corrupt token — rolls back by doing
nothing: the old index keeps serving and the generation is untouched.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.faults import SERVE_RELOAD_CORRUPT, FaultPlan
from repro.obs import Recorder
from repro.serve import StrategyServer, build_index
from repro.study.dataset import PerfDataset

from tests.test_serve_server import http_request, run

GOLDEN_DATASET = "mini-dataset.json.gz"


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture()
def index_file(golden_dataset, tmp_path) -> str:
    path = str(tmp_path / "index.json")
    build_index(golden_dataset).save(path)
    return path


class TestReload:
    def test_successful_reload_bumps_generation_and_clears_cache(
        self, golden_dataset, index_file
    ):
        async def go():
            recorder = Recorder()
            server = StrategyServer(
                build_index(golden_dataset),
                recorder=recorder,
                index_path=index_file,
            )
            await server.start()
            try:
                target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
                _, _, before = await http_request(server.port, "GET", target)
                # Replace the on-disk artifact with one that also
                # carries portfolios: observable via /healthz.
                build_index(golden_dataset, portfolios=True).save(index_file)
                result = await server.reload_index()
                _, health, _ = await http_request(
                    server.port, "GET", "/healthz"
                )
                _, _, after = await http_request(server.port, "GET", target)
            finally:
                await server.stop()
            return recorder.snapshot(), result, health, before, after

        snap, result, health, before, after = run(go())
        assert result["reloaded"] is True
        assert result["generation"] == 1
        assert health["index_generation"] == 1
        assert health["reloads"] == {"ok": 1, "failed": 0}
        assert "portfolio_curves" in health
        assert after == before  # same dataset: byte-identical answers
        assert snap["counters"]["serve.reload.attempts"] == 1
        assert snap["counters"]["serve.reload.success"] == 1
        assert "serve.reload.failures" not in snap["counters"]

    def test_corrupt_candidate_rolls_back(self, golden_dataset, index_file):
        async def go():
            recorder = Recorder()
            server = StrategyServer(
                build_index(golden_dataset),
                recorder=recorder,
                index_path=index_file,
            )
            await server.start()
            try:
                target = "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road"
                _, _, before = await http_request(server.port, "GET", target)
                # Truncate the artifact on disk mid-"deploy".
                with open(index_file, "r+", encoding="utf-8") as f:
                    text = f.read()
                    f.seek(0)
                    f.truncate()
                    f.write(text[: len(text) // 2])
                result = await server.reload_index()
                _, _, after = await http_request(server.port, "GET", target)
                _, health, _ = await http_request(
                    server.port, "GET", "/healthz"
                )
            finally:
                await server.stop()
            return recorder.snapshot(), result, health, before, after

        snap, result, health, before, after = run(go())
        assert result["reloaded"] is False
        assert "error" in result
        assert result["generation"] == 0
        assert health["index_generation"] == 0
        assert health["reloads"] == {"ok": 0, "failed": 1}
        assert after == before  # the old index kept serving
        assert snap["counters"]["serve.reload.failures"] == 1

    def test_chaos_corrupt_token_garbles_one_reload(
        self, golden_dataset, index_file, tmp_path
    ):
        """The serve.reload fault point: the first reload's candidate
        is garbled after read (rollback), the next one is clean."""
        plan = FaultPlan(str(tmp_path / "faults"))
        plan.arm("corrupt", SERVE_RELOAD_CORRUPT)

        async def go():
            server = StrategyServer(
                build_index(golden_dataset),
                index_path=index_file,
                faults=plan,
            )
            await server.start()
            try:
                first = await server.reload_index()
                second = await server.reload_index()
            finally:
                await server.stop()
            return first, second

        first, second = run(go())
        assert first["reloaded"] is False
        assert first["generation"] == 0
        assert second["reloaded"] is True
        assert second["generation"] == 1
        assert plan.armed() == []  # the token was consumed

    def test_request_reload_is_schedulable_from_a_signal_handler(
        self, golden_dataset, index_file
    ):
        """SIGHUP handlers cannot await; request_reload schedules the
        coroutine onto the running loop instead."""

        async def go():
            server = StrategyServer(
                build_index(golden_dataset), index_path=index_file
            )
            await server.start()
            try:
                server.request_reload()
                for _ in range(100):
                    if server.index_generation:
                        break
                    await asyncio.sleep(0.01)
            finally:
                await server.stop()
            return server.index_generation

        assert run(go()) == 1

    def test_reload_without_index_path_refuses(self, golden_dataset):
        async def go():
            server = StrategyServer(build_index(golden_dataset))
            await server.start()
            try:
                return await server.reload_index()
            finally:
                await server.stop()

        result = run(go())
        assert result["reloaded"] is False
        assert "no index path" in result["error"]


class TestAdminEndpoint:
    def test_admin_reload_and_health_on_loopback_port(
        self, golden_dataset, index_file
    ):
        async def go():
            server = StrategyServer(
                build_index(golden_dataset),
                index_path=index_file,
                admin_port=0,
            )
            await server.start()
            assert server.admin_port not in (None, 0)
            assert server.admin_port != server.port
            try:
                status, body, _ = await http_request(
                    server.admin_port, "POST", "/admin/reload"
                )
                hstatus, health, _ = await http_request(
                    server.admin_port, "GET", "/admin/health"
                )
                # The admin surface is not mounted on the public port.
                pstatus, _, _ = await http_request(
                    server.port, "POST", "/admin/reload"
                )
            finally:
                await server.stop()
            return status, body, hstatus, health, pstatus

        status, body, hstatus, health, pstatus = run(go())
        assert status == 200
        assert body["reloaded"] is True
        assert hstatus == 200
        assert health["index_generation"] == 1
        assert pstatus == 404

    def test_admin_reload_failure_is_409(self, golden_dataset):
        async def go():
            server = StrategyServer(
                build_index(golden_dataset), admin_port=0
            )  # no index_path: reload must refuse
            await server.start()
            try:
                status, body, _ = await http_request(
                    server.admin_port, "POST", "/admin/reload"
                )
                gstatus, _, _ = await http_request(
                    server.admin_port, "GET", "/admin/reload"
                )
            finally:
                await server.stop()
            return status, body, gstatus

        status, body, gstatus = run(go())
        assert status == 409
        assert body["reloaded"] is False
        assert gstatus == 405
