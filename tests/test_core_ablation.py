"""Tests for the methodological ablations."""

import pytest

from repro.core import Analysis
from repro.core.ablation import (
    confidence_ablation,
    magnitude_decide,
    magnitude_vs_rank,
)

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, Analysis(ds)


class TestMagnitudeDecide:
    def test_clear_speedup_enabled(self):
        assert magnitude_decide([0.8, 0.82, 0.79, 0.81, 0.8])

    def test_clear_slowdown_disabled(self):
        assert not magnitude_decide([1.2, 1.22, 1.19, 1.21])

    def test_too_few_samples_disabled(self):
        assert not magnitude_decide([0.5, 0.5])

    def test_zero_variance_uses_mean_sign(self):
        assert magnitude_decide([0.9, 0.9, 0.9])
        assert not magnitude_decide([1.1, 1.1, 1.1])

    def test_magnitude_sensitivity(self):
        """A minority of large wins among consistent small losses flips
        the t-test but not the rank-based rule — the Section II-C bias:
        magnitude metrics favour the sensitive cases."""
        ratios = [0.4] * 5 + [1.03] * 10
        assert magnitude_decide(ratios)  # mean log is strongly negative
        from repro.core.stats import mann_whitney_u, median

        result = mann_whitney_u(ratios, [1.0] * len(ratios))
        rank_enabled = result.reject_null() and median(ratios) < 1.0
        assert not rank_enabled


class TestMagnitudeVsRank:
    def test_covers_all_partition_opt_pairs(self, designed):
        ds, analysis = designed
        results = magnitude_vs_rank(ds, dims=("chip",), analysis=analysis)
        assert len(results) == 2 * 7  # 2 chips x 7 optimisations

    def test_agree_on_designed_clear_effects(self, designed):
        ds, analysis = designed
        results = magnitude_vs_rank(ds, dims=(), analysis=analysis)
        by_opt = {r.opt: r for r in results}
        # Clean universal effects: both rules see them identically.
        assert by_opt["sg"].rank_enabled and by_opt["sg"].magnitude_enabled
        assert not by_opt["wg"].rank_enabled
        assert not by_opt["wg"].magnitude_enabled


class TestConfidenceAblation:
    def test_reference_level_agrees_with_itself(self, designed):
        ds, _ = designed
        points = confidence_ablation(ds, levels=(0.95,), dims=("chip",))
        assert points[0].agreement_with(points[0]) == 1.0

    def test_designed_effects_stable_across_levels(self, designed):
        """Clean effects survive any reasonable filter level."""
        ds, _ = designed
        points = confidence_ablation(
            ds, levels=(0.80, 0.95, 0.99), dims=("chip",)
        )
        ref = points[1]
        for p in points:
            assert p.agreement_with(ref) >= 0.85

    def test_levels_recorded(self, designed):
        ds, _ = designed
        points = confidence_ablation(ds, levels=(0.9, 0.99), dims=())
        assert [p.confidence for p in points] == [0.9, 0.99]
