"""Degraded-mode analysis: every experiment renders on partial data.

Parametrized drops — one chip, one app, one configuration, a random
20 % of cells — are applied to the pinned mini dataset; every
dataset-driven experiment module must still render, with a coverage
footnote exactly when the dataset's own grid is incomplete.  The
end-to-end scenario (kill a study mid-run, ``repro doctor`` the
checkpoint, export and analyse the partial dataset) drives the real
CLI in subprocesses.
"""

import os
import subprocess
import sys

import pytest

from repro.core import Analysis, build_strategies
from repro.experiments import (
    fig1_heatmap,
    fig2_top_opts,
    fig3_outcomes,
    fig4_slowdown,
    nvidia_only,
    portfolio_curve,
    table2_envelope,
    table3_ranking,
    table4_bias,
    table5_strategies,
    table9_chip_function,
)
from repro.study import PerfDataset

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FOOTNOTE = "note: derived from"


def _drop(dataset, predicate):
    """A copy of ``dataset`` without the cells matching ``predicate``."""
    out = PerfDataset()
    for test, config, times in dataset.iter_measurements():
        if predicate(test, config):
            continue
        out.add(test, config, times)
    return out


@pytest.fixture(scope="module")
def degraded(mini_dataset):
    """The parametrized drop scenarios, built once per module."""
    import random

    chips = mini_dataset.chips
    apps = mini_dataset.apps
    non_baseline = [c for c in mini_dataset.configs if c.key() != "baseline"]
    rng = random.Random(1234)
    cells = [
        (test, config)
        for test, config, _ in mini_dataset.iter_measurements()
    ]
    dropped_20 = set(rng.sample(range(len(cells)), k=len(cells) // 5))
    dropped_cells = {
        (test, config.key())
        for i, (test, config) in enumerate(cells)
        if i in dropped_20
    }
    return {
        "drop-chip": _drop(mini_dataset, lambda t, c: t.chip == chips[0]),
        "drop-app": _drop(mini_dataset, lambda t, c: t.app == apps[0]),
        "drop-config": _drop(
            mini_dataset, lambda t, c: c.key() == non_baseline[0].key()
        ),
        "drop-20pct": _drop(
            mini_dataset, lambda t, c: (t, c.key()) in dropped_cells
        ),
    }


SCENARIOS = ["drop-chip", "drop-app", "drop-config", "drop-20pct"]


class TestExperimentsRenderDegraded:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize(
        "module",
        [
            fig1_heatmap,
            fig2_top_opts,
            table2_envelope,
            table3_ranking,
            table4_bias,
            table9_chip_function,
            nvidia_only,
            portfolio_curve,
        ],
        ids=lambda m: m.__name__.rsplit(".", 1)[-1],
    )
    def test_dataset_experiments_render(self, degraded, scenario, module):
        ds = degraded[scenario]
        out = module.run(ds)
        assert out.strip()
        # Footnote exactly when the dataset's own grid is incomplete.
        assert (FOOTNOTE in out) == (not ds.coverage().complete)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize(
        "module",
        [fig3_outcomes, fig4_slowdown],
        ids=["fig3_outcomes", "fig4_slowdown"],
    )
    def test_strategy_experiments_render(self, degraded, scenario, module):
        ds = degraded[scenario]
        strategies = build_strategies(ds, Analysis(ds))
        out = module.run(ds, strategies)
        assert out.strip()

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_table5_footnotes_degraded_strategies(self, degraded, scenario):
        ds = degraded[scenario]
        strategies = build_strategies(ds, Analysis(ds))
        out = table5_strategies.run(strategies)
        assert "Table V" in out
        assert (FOOTNOTE in out) == (not ds.coverage().complete)

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_budget_curve_renders_degraded(self, degraded, scenario):
        """The budgeted-search experiment scores every scoreable test
        on partial data — holes are free, uninformative probes — and
        footnotes exactly like every other table.  Reduced budgets and
        trials keep the sweep fast; the full grid is golden-pinned in
        ``test_search_eval``."""
        from repro.experiments import budget_curve

        ds = degraded[scenario]
        out = budget_curve.run(ds, budgets=(8, 32, 96), trials=2)
        assert out.strip()
        assert (FOOTNOTE in out) == (not ds.coverage().complete)

    def test_budget_curve_renders_after_nan_quarantine(self, mini_dataset):
        """Poisoning one test's cells with NaN and auditing leaves a
        holed dataset the search replays still render on, footnoted."""
        from repro.experiments import budget_curve
        from repro.study.audit import audit_dataset

        victim = mini_dataset.tests[0]
        bad = {
            c.key() for c in mini_dataset.configs[: len(mini_dataset.configs) // 2]
            if c.key() != "baseline"
        }
        poisoned = _drop(
            mini_dataset, lambda t, c: t == victim and c.key() in bad
        )
        for config in mini_dataset.configs:
            if config.key() in bad:
                poisoned.add(victim, config, [float("nan")] * 3)
        audit = audit_dataset(poisoned)
        assert audit.coverage.quarantined == len(bad)
        assert not audit.dataset.coverage().complete
        out = budget_curve.run(audit.dataset, budgets=(8, 96), trials=2)
        assert out.strip()
        assert FOOTNOTE in out

    def test_full_coverage_has_no_footnote(self, mini_dataset):
        assert FOOTNOTE not in table2_envelope.run(mini_dataset)
        assert FOOTNOTE not in fig1_heatmap.run(mini_dataset)


class TestPortfolioDegraded:
    """Portfolio serving degrades exactly like strategy serving: a
    missing partition falls back up the lattice and is marked
    ``degraded``; a holed or quarantined source dataset footnotes
    every answer's note."""

    def test_dropped_chip_falls_back_marked_degraded(
        self, mini_dataset, degraded
    ):
        from repro.serve import build_index

        gone = mini_dataset.chips[0]
        ds = degraded["drop-chip"]
        index = build_index(ds, portfolios=True)
        answer = index.lookup_portfolio(
            chip=gone, app=ds.apps[0], input=ds.graphs[0]
        )
        assert answer.degraded
        assert answer.requested_level == "chip+app+input"
        assert answer.served_level == "app+input"
        assert "fell back" in answer.note
        # The surviving chips' partitions answer at full fidelity.
        intact = index.lookup_portfolio(
            chip=ds.chips[0], app=ds.apps[0], input=ds.graphs[0]
        )
        assert not intact.degraded

    def test_holed_dataset_footnotes_every_answer(self, degraded):
        from repro.serve import build_index

        ds = degraded["drop-20pct"]
        assert not ds.coverage().complete
        index = build_index(ds, portfolios=True)
        answer = index.lookup_portfolio(
            chip=ds.chips[0], app=ds.apps[0], input=ds.graphs[0]
        )
        assert not answer.degraded  # no partition vanished ...
        assert "derived from" in answer.note  # ... but the note says so
        assert "% of expected cells" in answer.note

    def test_quarantined_partition_degrades_with_footnote(
        self, mini_dataset
    ):
        """Poisoning every cell of one test with NaN quarantines the
        whole partition: queries for it fall back (degraded) and the
        note carries both the fallback and the quarantine record."""
        from repro.serve import build_index

        victim = mini_dataset.tests[0]
        poisoned = _drop(mini_dataset, lambda t, c: t == victim)
        for config in mini_dataset.configs:
            poisoned.add(victim, config, [float("nan")] * 3)
        index = build_index(poisoned, portfolios=True)
        assert index.coverage.quarantined == len(mini_dataset.configs)
        answer = index.lookup_portfolio(
            chip=victim.chip, app=victim.app, input=victim.graph
        )
        assert answer.degraded
        assert answer.served_level != "chip+app+input"
        assert "fell back" in answer.note
        assert "quarantined" in answer.note

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_served_bytes_stay_differential_when_degraded(
        self, degraded, scenario
    ):
        """Even on degraded data the precompiled table, the on-demand
        encoder and the offline curves agree byte-for-byte."""
        import json

        from repro.serve import build_index, render_portfolio_answer

        ds = degraded[scenario]
        index = build_index(ds, portfolios=True)
        for (chip, app, inp), (body, deg) in index.portfolio_answers.items():
            rendered, rendered_deg = render_portfolio_answer(
                index, chip=chip, app=app, input=inp
            )
            assert body == rendered
            assert deg == rendered_deg
        # Footnote in the served note exactly when the audited source
        # grid is incomplete (mirrors the experiment-table contract).
        body, _ = index.portfolio_answer((None, None, None))
        note = json.loads(body)["note"]
        assert ("derived from" in note) == (not index.coverage.complete)


class TestAnalysisStability:
    def test_mwu_pick_unchanged_when_losing_config_dropped(
        self, mini_dataset
    ):
        _, _, mwu_pick, _ = table4_bias.data(mini_dataset)
        loser = next(
            c
            for c in mini_dataset.configs
            if c.key() not in ("baseline", mwu_pick.key())
        )
        degraded = _drop(
            mini_dataset, lambda t, c: c.key() == loser.key()
        )
        _, _, degraded_pick, _ = table4_bias.data(degraded)
        assert degraded_pick.key() == mwu_pick.key()

    def test_missing_pairs_counted(self, mini_dataset):
        from repro.obs import Recorder

        ds = _drop(
            mini_dataset,
            lambda t, c: t.chip == mini_dataset.chips[0]
            and c.key() == "baseline",
        )
        rec = Recorder()
        Analysis(ds, recorder=rec).comparison_lists(ds.tests, "wg")
        assert rec.counter_value("analysis.pairs.missing") > 0


def _cli(args, env_extra=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestKillDoctorAnalyseE2E:
    def test_kill_doctor_export_analyse(self, tmp_path):
        from repro.faults import FaultPlan

        out = str(tmp_path / "out.json")
        ckpt = str(tmp_path / "out.ckpt")
        spool = str(tmp_path / "faults")
        FaultPlan(spool).arm("interrupt", "shard-0-20")

        # 1. Kill the study mid-run (injected ^C after 21 shards).
        killed = _cli(
            [
                "study",
                out,
                "--scale",
                "0.05",
                "--jobs",
                "2",
                "--checkpoint",
                ckpt,
                "--faults",
                spool,
            ]
        )
        assert killed.returncode == 130, killed.stderr

        # 2. The doctor finds a healthy-partial checkpoint: exit zero,
        #    repair plan naming the --resume remedy.
        exported = str(tmp_path / "partial.json")
        doctored = _cli(["doctor", ckpt, "--export", exported])
        assert doctored.returncode == 0, doctored.stderr
        assert "repair plan" in doctored.stdout
        assert "--resume" in doctored.stdout
        assert "exported" in doctored.stdout

        # 3. Partial analysis over the exported dataset via the CLI.
        report = _cli(
            ["report", "table2", "--min-coverage", "0.0"],
            env_extra={"REPRO_DATASET": exported},
        )
        assert report.returncode == 0, report.stderr
        assert "table2" in report.stdout
