"""Tests for the 95% CI significance filter and outcome vocabulary."""

import pytest
import scipy.stats

from repro.core import classify_outcome, significant_difference, welch_interval


class TestWelchInterval:
    def test_matches_scipy_ttest_boundary(self):
        """Our interval excludes 0 exactly when Welch's t-test p < alpha."""
        cases = [
            ([10.0, 10.5, 9.8], [12.0, 12.2, 11.9]),
            ([10.0, 10.5, 9.8], [10.1, 10.4, 10.0]),
            ([5.0, 5.1, 5.2, 4.9], [5.4, 5.6, 5.5]),
        ]
        for a, b in cases:
            lo, hi = welch_interval(a, b, confidence=0.95)
            excluded = lo > 0 or hi < 0
            p = scipy.stats.ttest_ind(a, b, equal_var=False).pvalue
            assert excluded == (p < 0.05)

    def test_interval_contains_mean_difference(self):
        a, b = [10.0, 11.0, 12.0], [8.0, 9.0, 10.0]
        lo, hi = welch_interval(a, b)
        diff = sum(a) / 3 - sum(b) / 3
        assert lo < diff < hi

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            welch_interval([1.0], [2.0, 3.0])

    def test_zero_variance_handled(self):
        lo, hi = welch_interval([5.0, 5.0, 5.0], [7.0, 7.0, 7.0])
        assert hi < 0  # clearly different despite degenerate variance

    def test_wider_at_higher_confidence(self):
        a, b = [10.0, 10.6, 9.7], [10.2, 10.9, 10.1]
        lo95, hi95 = welch_interval(a, b, 0.95)
        lo99, hi99 = welch_interval(a, b, 0.99)
        assert lo99 < lo95 and hi99 > hi95


class TestSignificance:
    def test_identical_not_significant(self):
        assert not significant_difference([5.0, 5.1, 4.9], [5.0, 5.1, 4.9])

    def test_clear_difference_significant(self):
        assert significant_difference([5.0, 5.1, 4.9], [50.0, 51.0, 49.0])

    def test_noise_masks_small_difference(self):
        a = [100.0, 120.0, 80.0]
        b = [105.0, 125.0, 85.0]
        assert not significant_difference(a, b)

    def test_single_repetition_is_never_significant(self):
        # No variance information → no significance evidence.  A
        # degraded 1-repetition dataset must classify as no-change,
        # not crash the analysis (welch_interval itself still raises).
        assert not significant_difference([5.0], [50.0, 51.0, 49.0])
        assert not significant_difference([5.0, 5.1, 4.9], [50.0])
        assert classify_outcome([10.0], [5.0]) == "no-change"
        with pytest.raises(ValueError):
            welch_interval([5.0], [50.0, 51.0, 49.0])


class TestClassifyOutcome:
    def test_speedup(self):
        assert classify_outcome([10.0, 10.1, 9.9], [5.0, 5.1, 4.9]) == "speedup"

    def test_slowdown(self):
        assert classify_outcome([5.0, 5.1, 4.9], [10.0, 10.1, 9.9]) == "slowdown"

    def test_no_change(self):
        assert (
            classify_outcome([5.0, 5.1, 4.9], [5.05, 5.12, 4.93]) == "no-change"
        )

    def test_paper_definition_requires_significance(self):
        """A faster median alone is not a speedup without significance."""
        base = [100.0, 130.0, 70.0]
        times = [95.0, 125.0, 65.0]
        assert classify_outcome(base, times) == "no-change"
