"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_single_root(self):
        for name in (
            "GraphError",
            "GraphFormatError",
            "DSLError",
            "CompileError",
            "InvalidConfigError",
            "ExecutionError",
            "ForwardProgressError",
            "ChipError",
            "DatasetError",
            "AnalysisError",
            "InsufficientDataError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_specialisation_relationships(self):
        assert issubclass(errors.GraphFormatError, errors.GraphError)
        assert issubclass(errors.InvalidConfigError, errors.CompileError)
        assert issubclass(errors.ForwardProgressError, errors.ExecutionError)
        assert issubclass(errors.InsufficientDataError, errors.AnalysisError)

    def test_catchable_as_root(self):
        with pytest.raises(errors.ReproError):
            raise errors.InsufficientDataError("too few samples")

    def test_library_raises_only_repro_errors(self):
        """Public entry points translate misuse into the hierarchy."""
        from repro.compiler import OptConfig
        from repro.graphs import CSRGraph

        with pytest.raises(errors.ReproError):
            CSRGraph.from_edges(1, [(0, 5)])
        with pytest.raises(errors.ReproError):
            OptConfig(fg=3)
