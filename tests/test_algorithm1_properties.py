"""Property-based tests of Algorithm 1 on randomly designed effects.

Hypothesis draws a random per-optimisation effect design; the analysis
must recover each effect's sign whenever its magnitude clears the
noise floor, and must never *enable* an optimisation designed to hurt.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import OPT_NAMES
from repro.core import Analysis

from .synthetic import build_synthetic_dataset

# Effects either clearly help, clearly hurt, or do nothing; magnitudes
# stay well outside the 0.4% jitter so the expected verdicts are
# unambiguous.
effect_values = st.sampled_from([0.7, 0.85, 1.0, 1.2, 1.4])


@st.composite
def effect_designs(draw):
    return {opt: draw(effect_values) for opt in OPT_NAMES}


class TestRecoveryProperties:
    @settings(max_examples=8, deadline=None)
    @given(effect_designs())
    def test_signs_recovered(self, design):
        ds = build_synthetic_dataset(
            effects=lambda opt, test: design[opt],
            apps=("a1",),
            graphs=("g1",),
            chips=("C1",),
        )
        analysis = Analysis(ds)
        for opt in OPT_NAMES:
            decision = analysis.decide(ds.tests, opt)
            if design[opt] < 1.0:
                assert decision.enabled, (opt, design[opt])
            elif design[opt] > 1.0:
                assert not decision.enabled, (opt, design[opt])
            else:
                # No designed effect: must not be confidently enabled.
                assert not decision.enabled

    @settings(max_examples=6, deadline=None)
    @given(effect_designs())
    def test_recommended_config_never_contains_harm(self, design):
        ds = build_synthetic_dataset(
            effects=lambda opt, test: design[opt],
            apps=("a1",),
            graphs=("g1",),
            chips=("C1",),
        )
        analysis = Analysis(ds)
        config = analysis.config_for_partition(ds.tests)
        for opt in config.enabled_names():
            assert design[opt] < 1.0

    @settings(max_examples=6, deadline=None)
    @given(effect_designs())
    def test_effect_size_tracks_design_direction(self, design):
        ds = build_synthetic_dataset(
            effects=lambda opt, test: design[opt],
            apps=("a1",),
            graphs=("g1",),
            chips=("C1",),
        )
        analysis = Analysis(ds)
        for opt in OPT_NAMES:
            decision = analysis.decide(ds.tests, opt)
            if decision.inconclusive:
                continue
            if design[opt] < 1.0:
                assert decision.effect_size > 0.5
            elif design[opt] > 1.0:
                assert decision.effect_size < 0.5
