"""End-to-end integration tests: study -> analysis -> paper claims.

These run the full pipeline on the miniature study (3 apps, 2 inputs,
3 chips, all 96 configurations) and assert the qualitative invariants
the reproduction is built around.
"""

import pytest

from repro.compiler import BASELINE
from repro.core import (
    Analysis,
    build_strategies,
    cross_chip_heatmap,
    evaluate_strategies,
    rank_configurations,
)
from repro.core.strategies import STRATEGY_ORDER


@pytest.fixture(scope="module")
def pipeline(mini_dataset):
    analysis = Analysis(mini_dataset)
    strategies = build_strategies(mini_dataset, analysis)
    return mini_dataset, analysis, strategies


class TestPaperClaims:
    def test_no_universally_beneficial_optimisation(self, pipeline):
        """Paper conclusion: even the best combination harms somewhere."""
        dataset, _, _ = pipeline
        best = rank_configurations(dataset)[0]
        assert best.slowdowns > 0 or best.speedups < len(dataset.tests)

    def test_chip_decisions_differ_across_vendors(self, pipeline):
        """Chips are an independent portability dimension."""
        _, analysis, _ = pipeline
        per_chip = analysis.specialise(("chip",))
        configs = {key[0]: cfg.key() for key, cfg in per_chip.items()}
        assert len(set(configs.values())) > 1

    def test_nvidia_disables_oitergb_mali_enables(self, pipeline):
        _, analysis, _ = pipeline
        decisions = analysis.specialise_decisions(("chip",))
        assert not decisions[("GTX1080",)]["oitergb"].enabled
        assert decisions[("MALI",)]["oitergb"].enabled
        assert decisions[("R9",)]["oitergb"].enabled

    def test_strategy_spectrum_brackets(self, pipeline):
        """The oracle bounds every strategy from below and the baseline
        from above; some Algorithm 1 strategy beats doing nothing.

        (Strict monotonicity along the specialisation chain is *not*
        guaranteed for MWU-derived strategies — per-partition decisions
        are marginal per optimisation, so interaction effects can make
        a finer partitioning worse on small data.)
        """
        dataset, _, strategies = pipeline
        summary = evaluate_strategies(dataset, strategies)
        v = {name: summary[name]["slowdown_vs_oracle"] for name in STRATEGY_ORDER}
        assert v["oracle"] == min(v.values())
        assert v["baseline"] == max(v.values())
        algorithmic = [
            v[n] for n in STRATEGY_ORDER if n not in ("baseline", "oracle")
        ]
        assert min(algorithmic) < v["baseline"]

    def test_chip_optimal_settings_do_not_port(self, pipeline):
        """Fig 1: off-diagonal slowdowns exist."""
        dataset, _, _ = pipeline
        chips, heat = cross_chip_heatmap(dataset)
        off_diag = [
            heat[(r, c)] for r in chips for c in chips if r != c
        ]
        assert max(off_diag) > 1.1

    def test_oracle_provides_real_speedups(self, pipeline):
        dataset, _, strategies = pipeline
        oracle = strategies["oracle"]
        improved = 0
        for test in dataset.tests:
            base = dataset.median(test, BASELINE)
            best = dataset.median(test, oracle.config_for(test))
            if best < base * 0.95:
                improved += 1
        assert improved >= len(dataset.tests) // 2

    def test_rank_based_pick_is_magnitude_agnostic(self, pipeline):
        """Table IV: the MWU pick never wins the geomean contest (it is
        not chasing magnitudes), yet still provides speedups on every
        chip.  (The designed-effects unit tests in test_core_naive
        verify the bias mechanism itself.)"""
        from repro.core.naive import per_chip_breakdown, rank_configurations

        dataset, analysis, _ = pipeline
        mwu_config = analysis.config_for_partition(dataset.tests)
        by_key = {r.config.key(): r for r in rank_configurations(dataset)}
        best_geomean = max(r.geomean_speedup for r in by_key.values())
        assert by_key[mwu_config.key()].geomean_speedup <= best_geomean
        mwu_rows = per_chip_breakdown(dataset, mwu_config)
        assert all(r.speedups > 0 for r in mwu_rows.values())
