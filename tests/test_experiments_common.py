"""Tests for the experiments' dataset cache plumbing."""

import os

import pytest

from repro.experiments import common
from repro.study import PerfDataset

from .synthetic import build_synthetic_dataset


@pytest.fixture(autouse=True)
def clean_cache():
    common.reset_cache()
    yield
    common.reset_cache()


class TestCachePath:
    def test_env_override(self, monkeypatch, tmp_path):
        target = str(tmp_path / "custom.json.gz")
        monkeypatch.setenv("REPRO_DATASET", target)
        assert common.cache_path() == target

    def test_default_under_repo(self, monkeypatch):
        monkeypatch.delenv("REPRO_DATASET", raising=False)
        path = common.cache_path()
        assert path.endswith(os.path.join(".cache", "dataset-default.json.gz"))


class TestDefaultDataset:
    def test_loads_from_env_path(self, monkeypatch, tmp_path):
        ds = build_synthetic_dataset(apps=("a1",), graphs=("g1",))
        path = str(tmp_path / "ds.json.gz")
        ds.save(path)
        monkeypatch.setenv("REPRO_DATASET", path)
        loaded = common.default_dataset()
        assert isinstance(loaded, PerfDataset)
        assert loaded.n_measurements == ds.n_measurements

    def test_process_cache_hits(self, monkeypatch, tmp_path):
        ds = build_synthetic_dataset(apps=("a1",), graphs=("g1",))
        path = str(tmp_path / "ds.json.gz")
        ds.save(path)
        monkeypatch.setenv("REPRO_DATASET", path)
        first = common.default_dataset()
        os.remove(path)  # the second call must not re-read the file
        assert common.default_dataset() is first

    def test_analysis_and_strategies_cached(self, monkeypatch, tmp_path):
        ds = build_synthetic_dataset(apps=("a1",), graphs=("g1",))
        path = str(tmp_path / "ds.json.gz")
        ds.save(path)
        monkeypatch.setenv("REPRO_DATASET", path)
        assert common.default_analysis() is common.default_analysis()
        strategies = common.default_strategies()
        assert strategies is common.default_strategies()
        assert "oracle" in strategies
