"""Tests for PageRank and triangle-counting applications."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application, pagerank_reference, triangle_count_oracle
from repro.graphs import CSRGraph, rmat_graph, uniform_random_graph

TRI_VARIANTS = ["tri-nodeiter", "tri-edgeiter", "tri-hybrid"]


class TestPageRank:
    @pytest.mark.parametrize("name", ["pr-topo", "pr-wl"])
    def test_symmetric_cycle_uniform_rank(self, name):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        app = get_application(name)
        ranks = app.extract_result(app.run(g).state, g)
        assert np.allclose(ranks, 0.25, atol=1e-4)

    @pytest.mark.parametrize("name", ["pr-topo", "pr-wl"])
    def test_hub_attracts_rank(self, name):
        # Everyone points at node 0.
        g = CSRGraph.from_edges(5, [(i, 0) for i in range(1, 5)])
        app = get_application(name)
        ranks = app.extract_result(app.run(g).state, g)
        assert ranks[0] > 3 * ranks[1]

    def test_variants_agree(self, small_rmat):
        a = get_application("pr-topo")
        b = get_application("pr-wl")
        ra = a.extract_result(a.run(small_rmat).state, small_rmat)
        rb = b.extract_result(b.run(small_rmat).state, small_rmat)
        assert np.allclose(ra, rb, atol=5e-6)

    def test_reference_fixed_point(self, small_uniform):
        """The oracle satisfies its own defining equation."""
        rank = pagerank_reference(small_uniform, tolerance=1e-12)
        n = small_uniform.n_nodes
        deg = small_uniform.out_degrees().astype(float)
        contrib = np.where(deg > 0, rank / np.maximum(deg, 1), 0.0)
        incoming = np.bincount(
            small_uniform.col_idx,
            weights=contrib[small_uniform.edge_sources()],
            minlength=n,
        )
        assert np.allclose(rank, 0.15 / n + 0.85 * incoming, atol=1e-9)

    def test_push_variant_worklist_driven(self, small_road):
        trace = get_application("pr-wl").run(small_road).trace
        assert trace.total_pushes > 0

    def test_dangling_nodes_handled(self):
        g = CSRGraph.from_edges(3, [(0, 1), (0, 2)])  # 1, 2 dangle
        for name in ("pr-topo", "pr-wl"):
            app = get_application(name)
            ranks = app.extract_result(app.run(g).state, g)
            assert np.all(np.isfinite(ranks))
            assert ranks[1] == pytest.approx(ranks[2])


class TestTriangles:
    @pytest.mark.parametrize("name", TRI_VARIANTS)
    def test_two_disjoint_triangles(self, name, triangle_pair):
        app = get_application(name)
        count = app.extract_result(app.run(triangle_pair).state, triangle_pair)
        assert count[0] == 2

    @pytest.mark.parametrize("name", TRI_VARIANTS)
    def test_triangle_free_graph(self, name):
        g = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        app = get_application(name)
        assert app.extract_result(app.run(g).state, g)[0] == 0

    @pytest.mark.parametrize("name", TRI_VARIANTS)
    def test_complete_graph_k5(self, name):
        edges = [(u, v) for u in range(5) for v in range(5) if u != v]
        g = CSRGraph.from_edges(5, edges)
        app = get_application(name)
        assert app.extract_result(app.run(g).state, g)[0] == 10  # C(5,3)

    def test_variants_agree(self, small_rmat):
        counts = []
        for name in TRI_VARIANTS:
            app = get_application(name)
            counts.append(
                app.extract_result(app.run(small_rmat).state, small_rmat)[0]
            )
        assert counts[0] == counts[1] == counts[2]

    def test_oracle_on_known_graph(self, triangle_pair):
        assert triangle_count_oracle(triangle_pair) == 2

    def test_direction_ignored(self):
        # A directed 3-cycle is an undirected triangle.
        g = CSRGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        app = get_application("tri-nodeiter")
        assert app.extract_result(app.run(g).state, g)[0] == 1

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_oracle_on_random(self, seed):
        g = uniform_random_graph(40, 4.0, seed=seed % 977)
        assert get_application("tri-hybrid").validate(g)

    def test_single_launch_programs(self, small_rmat):
        """Triangle counting has no fixpoint: oitergb has no target."""
        trace = get_application("tri-nodeiter").run(small_rmat).trace
        assert trace.n_fixpoint_iterations == 0
        assert trace.n_launches == 1

    def test_hybrid_splits_work_on_power_law(self, small_rmat):
        trace = get_application("tri-hybrid").run(small_rmat).trace
        kernels = {r.kernel for r in trace.launches}
        assert kernels == {"tri_light_step", "tri_hub_step"}
