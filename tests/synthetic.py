"""Synthetic performance datasets with designed optimisation effects.

Used by the analysis tests: each optimisation's effect on each test is
an explicit multiplicative factor, so Algorithm 1's expected decisions
are known by construction.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.compiler import OptConfig, enumerate_configs
from repro.study import PerfDataset, TestCase
from repro.util import stable_hash

__all__ = ["build_synthetic_dataset", "DESIGNED_EFFECTS"]


def DESIGNED_EFFECTS(opt: str, test: TestCase) -> float:
    """The default effect design.

    * ``sg``  : universal 0.8x speedup;
    * ``wg``  : universal 1.25x slowdown;
    * ``fg``  : universal mild 0.9x speedup;
    * ``fg8`` : 0.7x on chip C1, 1.3x slowdown on chip C2;
    * others  : no effect.
    """
    if opt == "sg":
        return 0.8
    if opt == "wg":
        return 1.25
    if opt == "fg":
        return 0.9
    if opt == "fg8":
        return 0.7 if test.chip == "C1" else 1.3
    return 1.0


def build_synthetic_dataset(
    effects: Callable[[str, TestCase], float] = DESIGNED_EFFECTS,
    chips: Sequence[str] = ("C1", "C2"),
    apps: Sequence[str] = ("a1", "a2"),
    graphs: Sequence[str] = ("g1", "g2"),
    base_time: float = 1000.0,
    jitter: float = 0.004,
    repetitions: int = 3,
) -> PerfDataset:
    """Full-factorial dataset whose timings follow ``effects`` exactly."""
    ds = PerfDataset()
    for chip in chips:
        for app in apps:
            for graph in graphs:
                test = TestCase(app, graph, chip)
                for config in enumerate_configs():
                    true = base_time
                    for opt in config.enabled_names():
                        true *= effects(opt, test)
                    rng = np.random.default_rng(
                        stable_hash("synthetic", str(test), config.key())
                    )
                    times = [
                        true * (1.0 + rng.normal(0.0, jitter))
                        for _ in range(repetitions)
                    ]
                    ds.add(test, config, times)
    return ds
