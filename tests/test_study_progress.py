"""PhaseTimer ETA math and skip-logging, under a fake clock."""

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import BASELINE
from repro.graphs import CSRGraph
from repro.graphs.inputs import StudyInput
from repro.study import PhaseTimer, StudyConfig, format_duration, run_study


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestEtaMath:
    def _timer(self):
        out = []
        clock = FakeClock()
        return PhaseTimer(out.append, clock=clock), clock, out

    def test_eta_is_rate_extrapolation(self):
        timer, clock, out = self._timer()
        timer.start("work", total=5)
        timer.tick(2)
        clock.advance(10.0)
        timer.note("step")
        # 2 steps in 10s -> 5s/step -> 3 remaining -> 15s ETA, exactly.
        assert out == ["step [2/5, elapsed 10.0s, eta 15.0s]"]

    def test_no_eta_before_first_tick(self):
        timer, clock, out = self._timer()
        timer.start("work", total=5)
        clock.advance(3.0)
        timer.note("starting")
        assert out == ["starting [0/5, elapsed 3.0s]"]

    def test_no_eta_when_done(self):
        timer, clock, out = self._timer()
        timer.start("work", total=2)
        timer.tick(2)
        clock.advance(8.0)
        timer.note("last")
        assert out == ["last [2/2, elapsed 8.0s]"]

    def test_no_counters_without_total(self):
        timer, clock, out = self._timer()
        timer.start("work")
        clock.advance(1.5)
        timer.note("step")
        assert out == ["step [elapsed 1.5s]"]

    def test_eta_shrinks_as_rate_holds(self):
        timer, clock, out = self._timer()
        timer.start("work", total=4)
        for elapsed, expect in ((2.0, "eta 6.0s"), (2.0, "eta 4.0s")):
            timer.tick()
            clock.advance(elapsed)
            timer.note("step")
            assert expect in out[-1]

    def test_finish_reports_phase_duration(self):
        timer, clock, out = self._timer()
        timer.start("work", total=1)
        clock.advance(125.0)
        timer.finish("done")
        assert out == ["done in 2m05s"]

    def test_restart_resets_counters(self):
        timer, clock, out = self._timer()
        timer.start("one", total=2)
        timer.tick(2)
        clock.advance(50.0)
        timer.start("two", total=3)
        timer.tick()
        clock.advance(6.0)
        timer.note("fresh")
        assert out == ["fresh [1/3, elapsed 6.0s, eta 12.0s]"]

    def test_silent_timer_never_reads_the_clock_output(self):
        timer = PhaseTimer(None, clock=FakeClock())
        timer.start("work", total=1)
        timer.note("ignored")
        timer.finish("ignored")  # must not raise, must emit nothing


class TestFormatDuration:
    def test_sub_minute(self):
        assert format_duration(0.0) == "0.0s"
        assert format_duration(9.96) == "10.0s"
        assert format_duration(59.9) == "59.9s"

    def test_minutes(self):
        assert format_duration(60.0) == "1m00s"
        assert format_duration(61.0) == "1m01s"
        assert format_duration(3599.0) == "59m59s"
        assert format_duration(7265.0) == "121m05s"

    def test_negative_clamped(self):
        assert format_duration(-5.0) == "0.0s"


class TestSkipLogging:
    """The tracing phase reports skipped pairs with phase counters."""

    def _config(self):
        unweighted = CSRGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        return StudyConfig(
            apps=[get_application("sssp-nf"), get_application("bfs-wl")],
            inputs={
                "uw": StudyInput(
                    name="uw",
                    input_class="random",
                    description="unweighted",
                    _builder=lambda: unweighted,
                )
            },
            chips=[get_chip("R9")],
            configs=[BASELINE],
        )

    def test_run_study_decorates_skip_messages(self):
        messages = []
        run_study(self._config(), progress=messages.append)
        skips = [m for m in messages if m.startswith("skipping sssp-nf")]
        assert len(skips) == 1
        # Skips tick the tracing phase like traced pairs do, so the
        # counter accounts for every pair of the factorial.
        assert "[0/2, elapsed " in skips[0]
        traced = [m for m in messages if m.startswith("tracing bfs-wl")]
        assert len(traced) == 1 and "[1/2, elapsed " in traced[0]

    def test_skip_reason_names_app_input_and_cause(self):
        messages = []
        run_study(self._config(), progress=messages.append)
        skip = next(m for m in messages if m.startswith("skipping"))
        assert "sssp-nf" in skip and "uw" in skip and "edge weights" in skip
