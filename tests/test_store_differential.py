"""Differential tests: analysis off ``perf-dataset-v3`` is byte-identical.

The committed miniature dataset is converted to the columnar format
once per module; every committed golden artifact — experiment tables,
the budget curve, the strategy index — is then regenerated from the
*converted* dataset and compared byte-for-byte against the golden
files the JSON dataset produced.  Any divergence means the columnar
store changed an analysis result, which it must never do: it is a
serialisation change, not a semantics change.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments import (
    budget_curve,
    fig1_heatmap,
    table2_envelope,
    table3_ranking,
)
from repro.experiments import common as experiments_common
from repro.serve.index import build_index
from repro.store import COLUMNAR_FORMAT, ColumnarDataset
from repro.study.dataset import PerfDataset, peek_format

GOLDEN_DATASET = "mini-dataset.json.gz"
GOLDEN_INDEX = "strategy-index.json"

EXPERIMENTS = {
    "table2_envelope.txt": table2_envelope.run,
    "table3_ranking.txt": table3_ranking.run,
    "fig1_heatmap.txt": fig1_heatmap.run,
    "budget_curve.txt": budget_curve.run,
}


@pytest.fixture(scope="module")
def json_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def v3_path(goldens_dir, tmp_path_factory, json_dataset) -> str:
    path = str(tmp_path_factory.mktemp("diff") / "mini.v3")
    json_dataset.save(path, format="v3")
    return path


@pytest.fixture(scope="module")
def v3_dataset(v3_path) -> ColumnarDataset:
    dataset = PerfDataset.load(v3_path)
    assert isinstance(dataset, ColumnarDataset)
    return dataset


def test_conversion_preserves_every_cell(json_dataset, v3_dataset):
    assert v3_dataset == json_dataset
    assert v3_dataset.tests == json_dataset.tests
    assert [c.key() for c in v3_dataset.configs] == [
        c.key() for c in json_dataset.configs
    ]


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_golden_byte_identical_from_v3(name, v3_dataset, goldens_dir):
    rendered = EXPERIMENTS[name](v3_dataset)
    with open(os.path.join(goldens_dir, name), encoding="utf-8") as f:
        expected = f.read()
    assert rendered + "\n" == expected, (
        f"{name} rendered differently from the v3-converted dataset; "
        f"the columnar store changed an analysis result"
    )


def test_strategy_index_identical_from_v3(
    json_dataset, v3_dataset, tmp_path
):
    """Index compilation is deterministic across dataset backends."""
    a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
    build_index(json_dataset).save(a)
    build_index(v3_dataset).save(b)
    assert open(a, "rb").read() == open(b, "rb").read()


def test_committed_index_golden_from_v3(v3_dataset, goldens_dir, tmp_path):
    path = str(tmp_path / "index.json")
    build_index(v3_dataset).save(path)
    with open(os.path.join(goldens_dir, GOLDEN_INDEX), encoding="utf-8") as f:
        golden = json.load(f)
    with open(path, encoding="utf-8") as f:
        built = json.load(f)
    assert built == golden


def test_default_dataset_accepts_v3_env(v3_path, json_dataset, monkeypatch):
    """``$REPRO_DATASET`` pointing at a .v3 file drives the experiments."""
    monkeypatch.setenv("REPRO_DATASET", v3_path)
    experiments_common.reset_cache()
    try:
        dataset = experiments_common.default_dataset()
        assert peek_format(v3_path) == COLUMNAR_FORMAT
        assert dataset == json_dataset
        # The rendered table matches the committed golden end to end.
        rendered = table2_envelope.run(dataset)
        goldens = os.path.join(
            os.path.dirname(__file__), "goldens", "table2_envelope.txt"
        )
        with open(goldens, encoding="utf-8") as f:
            assert rendered + "\n" == f.read()
    finally:
        experiments_common.reset_cache()
