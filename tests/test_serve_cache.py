"""Tests for the serving layer's LRU + TTL response cache."""

from __future__ import annotations

import pytest

from repro.serve import TTLCache


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


class TestBasics:
    def test_get_miss_returns_default(self, clock):
        cache = TTLCache(clock=clock)
        assert cache.get("k") is None
        assert cache.get("k", default=7) == 7
        assert cache.misses == 2
        assert cache.hits == 0

    def test_put_then_get(self, clock):
        cache = TTLCache(clock=clock)
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1
        assert "k" in cache
        assert len(cache) == 1

    def test_cached_falsy_values_are_hits(self, clock):
        cache = TTLCache(clock=clock)
        cache.put("zero", 0)
        cache.put("empty", {})
        assert cache.get("zero", default="miss") == 0
        assert cache.get("empty", default="miss") == {}
        assert cache.hits == 2

    def test_put_refreshes_existing_key(self, clock):
        cache = TTLCache(maxsize=2, clock=clock)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1
        assert cache.evictions == 0

    def test_invalid_parameters(self, clock):
        with pytest.raises(ValueError):
            TTLCache(maxsize=-1, clock=clock)
        with pytest.raises(ValueError):
            TTLCache(ttl=0, clock=clock)


class TestExpiry:
    def test_entry_expires_after_ttl(self, clock):
        cache = TTLCache(ttl=10.0, clock=clock)
        cache.put("k", "v")
        clock.advance(9.99)
        assert cache.get("k") == "v"
        clock.advance(0.02)
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert "k" not in cache

    def test_refresh_restarts_the_ttl(self, clock):
        cache = TTLCache(ttl=10.0, clock=clock)
        cache.put("k", "v1")
        clock.advance(8.0)
        cache.put("k", "v2")
        clock.advance(8.0)  # 16s after the first put, 8 after the second
        assert cache.get("k") == "v2"

    def test_purge_drops_only_expired(self, clock):
        cache = TTLCache(ttl=10.0, clock=clock)
        cache.put("old", 1)
        clock.advance(6.0)
        cache.put("new", 2)
        clock.advance(5.0)  # old is 11s stale, new only 5s
        assert cache.purge() == 1
        assert len(cache) == 1
        assert cache.get("new") == 2


class TestLRU:
    def test_eviction_order_is_least_recently_used(self, clock):
        cache = TTLCache(maxsize=2, clock=clock)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch a: b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_maxsize_zero_disables_the_cache(self, clock):
        cache = TTLCache(maxsize=0, clock=clock)
        cache.put("k", "v")
        assert cache.get("k") is None
        assert len(cache) == 0
        assert cache.misses == 1

    def test_clear(self, clock):
        cache = TTLCache(clock=clock)
        cache.put("k", "v")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None


class TestStats:
    def test_stats_snapshot(self, clock):
        cache = TTLCache(maxsize=1, ttl=5.0, clock=clock)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        cache.put("b", 2)  # evicts a
        clock.advance(6.0)
        cache.get("b")  # expired
        stats = cache.stats()
        assert stats == {
            "size": 0,
            "maxsize": 1,
            "hits": 1,
            "misses": 2,
            "evictions": 1,
            "expirations": 1,
        }
