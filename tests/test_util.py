"""Tests for the shared numeric helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import expand_segments, geomean, stable_hash


class TestExpandSegments:
    def test_single_segment(self):
        out = expand_segments(np.array([3]), np.array([4]))
        assert out.tolist() == [3, 4, 5, 6]

    def test_multiple_segments(self):
        out = expand_segments(np.array([0, 10]), np.array([2, 3]))
        assert out.tolist() == [0, 1, 10, 11, 12]

    def test_empty_counts(self):
        out = expand_segments(np.array([5, 7]), np.array([0, 0]))
        assert out.size == 0

    def test_mixed_empty_segments(self):
        out = expand_segments(np.array([5, 100, 7]), np.array([1, 0, 2]))
        assert out.tolist() == [5, 7, 8]

    def test_no_segments(self):
        out = expand_segments(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert out.size == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1000),
                st.integers(min_value=0, max_value=20),
            ),
            max_size=30,
        )
    )
    def test_matches_python_loop(self, segments):
        starts = np.array([s for s, _ in segments], dtype=np.int64)
        counts = np.array([c for _, c in segments], dtype=np.int64)
        expected = [s + i for s, c in segments for i in range(c)]
        assert expand_segments(starts, counts).tolist() == expected


class TestGeomean:
    def test_identity_on_empty(self):
        assert geomean([]) == 1.0

    def test_single_value(self):
        assert geomean([4.0]) == pytest.approx(4.0)

    def test_known_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([-1.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=10))
    def test_scale_invariance(self, values):
        g1 = geomean(values)
        g2 = geomean([v * 2.0 for v in values])
        assert g2 == pytest.approx(2.0 * g1, rel=1e-9)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_distinguishes_parts(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_nonnegative_63bit(self):
        for parts in [("x",), ("y", 123), ("z", "w", 9.9)]:
            h = stable_hash(*parts)
            assert 0 <= h < (1 << 63)
