"""Property-based hardening of the from-scratch statistics kernel.

Hypothesis drives the paper-critical invariants that example-based
tests cannot sweep:

* the Mann-Whitney U test is *symmetric* (swapping the samples swaps
  the U statistics and negates z but leaves p unchanged) and
  *magnitude-agnostic* (invariant under rank-preserving transforms —
  the property the paper's whole methodology rests on);
* :func:`~repro.core.stats.ranks.rankdata` obeys the mid-rank
  contract: ranks sum to ``n(n+1)/2``, tied values share a rank,
  permutation only permutes ranks;
* the from-scratch t distribution matches closed forms (df 1, 2, 3)
  and a slow numerical-integration reference (df >= 5), and
  ``t_ppf``/``t_cdf`` round-trip;
* the Welch interval is antisymmetric under sample swap (exactly, in
  IEEE arithmetic) and widens with confidence.

Integer-valued floats keep order and tie structure exact under the
affine transforms, so the invariance assertions can use equality
rather than tolerances.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.significance import significant_difference, welch_interval
from repro.core.stats.mwu import mann_whitney_u
from repro.core.stats.ranks import rankdata, tie_groups
from repro.core.stats.tdist import t_cdf, t_ppf

# Small integer-valued samples: ties are common (the interesting case)
# and affine transforms with integer coefficients stay exact.
sample = st.lists(
    st.integers(min_value=-50, max_value=50).map(float),
    min_size=3,
    max_size=25,
)


# -- Mann-Whitney U ----------------------------------------------------------


@given(sample, sample)
def test_mwu_symmetry(a, b):
    fwd = mann_whitney_u(a, b)
    rev = mann_whitney_u(b, a)
    assert fwd.u1 == rev.u2 and fwd.u2 == rev.u1
    assert fwd.u == rev.u
    assert fwd.p_value == rev.p_value
    assert fwd.z == -rev.z or (fwd.z == 0.0 and rev.z == 0.0)


@given(
    sample,
    sample,
    st.integers(min_value=1, max_value=7),
    st.integers(min_value=-100, max_value=100),
)
def test_mwu_invariant_under_increasing_affine_transform(a, b, scale, shift):
    """The rank-based test must ignore magnitudes entirely.

    An increasing affine map preserves order and ties, so U and p are
    *identical* — this is the paper's magnitude-agnosticism, the reason
    a 20x-swing chip gets the same vote as a 1.05x-swing chip.
    """
    base = mann_whitney_u(a, b)
    ta = [scale * x + shift for x in a]
    tb = [scale * x + shift for x in b]
    transformed = mann_whitney_u(ta, tb)
    assert transformed.u1 == base.u1
    assert transformed.u2 == base.u2
    assert transformed.p_value == base.p_value


@given(sample, sample)
def test_mwu_u_statistics_partition_the_pairs(a, b):
    result = mann_whitney_u(a, b)
    assert result.u1 + result.u2 == len(a) * len(b)
    assert 0.0 <= result.u1 <= len(a) * len(b)
    assert 0.0 <= result.p_value <= 1.0


@given(sample)
def test_mwu_identical_samples_never_reject(a):
    result = mann_whitney_u(a, a)
    assert result.p_value == 1.0
    assert not result.reject_null()


# -- rank utilities ----------------------------------------------------------


@given(sample)
def test_rankdata_midrank_contract(values):
    ranks = rankdata(values)
    n = len(values)
    # Mid-ranks always sum to the sum 1 + 2 + ... + n.
    assert math.isclose(float(ranks.sum()), n * (n + 1) / 2.0)
    assert float(ranks.min()) >= 1.0 and float(ranks.max()) <= float(n)
    # Equal values share a rank; unequal values order by value.
    for i in range(n):
        for j in range(n):
            if values[i] == values[j]:
                assert ranks[i] == ranks[j]
            elif values[i] < values[j]:
                assert ranks[i] < ranks[j]


@given(sample, st.randoms(use_true_random=False))
def test_rankdata_permutation_equivariance(values, rnd):
    perm = list(range(len(values)))
    rnd.shuffle(perm)
    ranks = rankdata(values)
    permuted_ranks = rankdata([values[i] for i in perm])
    for pos, src in enumerate(perm):
        assert permuted_ranks[pos] == ranks[src]


@given(sample)
def test_tie_groups_account_for_duplicates(values):
    groups = tie_groups(values)
    assert all(g >= 2 for g in groups)
    assert sum(groups) <= len(values)
    # Sum over groups of (g - 1) equals the number of duplicate slots.
    n_duplicates = len(values) - len(set(values))
    assert sum(g - 1 for g in groups) == n_duplicates


# -- Student's t -------------------------------------------------------------


def _t_pdf(t: float, df: float) -> float:
    ln = (
        math.lgamma((df + 1.0) / 2.0)
        - math.lgamma(df / 2.0)
        - 0.5 * math.log(df * math.pi)
        - (df + 1.0) / 2.0 * math.log1p(t * t / df)
    )
    return math.exp(ln)


def _t_cdf_by_integration(t: float, df: float, lo: float = -60.0) -> float:
    """Slow Simpson-rule reference CDF (df >= 5 only: for smaller df
    the heavy tails make the truncated integral meaningfully wrong)."""
    n = 4000  # even
    h = (t - lo) / n
    acc = _t_pdf(lo, df) + _t_pdf(t, df)
    for i in range(1, n):
        acc += (4 if i % 2 else 2) * _t_pdf(lo + i * h, df)
    return acc * h / 3.0


ts = st.floats(min_value=-8.0, max_value=8.0, allow_nan=False)
dfs = st.floats(min_value=1.0, max_value=50.0, allow_nan=False)


@given(ts)
def test_t_cdf_df1_matches_cauchy_closed_form(t):
    assert t_cdf(t, 1.0) == pytest.approx(
        0.5 + math.atan(t) / math.pi, abs=1e-8
    )


@given(ts)
def test_t_cdf_df2_matches_closed_form(t):
    assert t_cdf(t, 2.0) == pytest.approx(
        0.5 + t / (2.0 * math.sqrt(2.0 + t * t)), abs=1e-8
    )


@given(ts)
def test_t_cdf_df3_matches_closed_form(t):
    x = t / math.sqrt(3.0)
    expected = 0.5 + (x / (1.0 + x * x) + math.atan(x)) / math.pi
    assert t_cdf(t, 3.0) == pytest.approx(expected, abs=1e-8)


@settings(max_examples=25, deadline=None)
@given(ts, st.integers(min_value=5, max_value=40))
def test_t_cdf_matches_numerical_integration(t, df):
    assert t_cdf(t, float(df)) == pytest.approx(
        _t_cdf_by_integration(t, float(df)), abs=1e-6
    )


@given(ts, dfs)
def test_t_cdf_symmetry(t, df):
    assert t_cdf(-t, df) == pytest.approx(1.0 - t_cdf(t, df), abs=1e-12)


@settings(deadline=None)
@given(
    st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
    dfs,
)
def test_t_ppf_roundtrip(q, df):
    assert t_cdf(t_ppf(q, df), df) == pytest.approx(q, abs=1e-8)


# -- Welch interval ----------------------------------------------------------


@given(sample, sample)
def test_welch_interval_antisymmetric_under_swap(a, b):
    lo, hi = welch_interval(a, b)
    rlo, rhi = welch_interval(b, a)
    # Exact in IEEE arithmetic: every term either is shared or negates.
    assert lo == -rhi and hi == -rlo
    assert significant_difference(a, b) == significant_difference(b, a)


@given(sample, sample)
def test_welch_interval_contains_mean_difference(a, b):
    lo, hi = welch_interval(a, b)
    diff = float(np.mean(a) - np.mean(b))
    assert lo <= diff <= hi
    assert lo < hi


@given(sample, sample)
def test_welch_interval_widens_with_confidence(a, b):
    lo90, hi90 = welch_interval(a, b, confidence=0.90)
    lo99, hi99 = welch_interval(a, b, confidence=0.99)
    assert lo99 <= lo90 and hi90 <= hi99


@given(sample, st.integers(min_value=1, max_value=1000))
def test_welch_identical_samples_not_significant(a, shift):
    assert not significant_difference(a, a)
    # A large uniform shift of one side must eventually be significant
    # unless the samples have (floored) zero variance.
    shifted = [x + 1000.0 + shift for x in a]
    if len(set(a)) > 1:
        assert significant_difference(shifted, a)
