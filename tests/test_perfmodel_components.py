"""Tests for divergence, atomics, launch overhead and noise models."""

import numpy as np
import pytest

from repro.chips import all_chips, get_chip
from repro.compiler import OptConfig, compile_program
from repro.compiler.plan import KernelPlan
from repro.dsl import (
    IterationSpace,
    Kernel,
    Store,
    fixpoint_program,
    relax_kernel,
)
from repro.perfmodel import (
    achieved_combine_factor,
    atomic_time_us,
    divergence_factor,
    global_barrier_us,
    host_overhead_us,
    measurement_rng,
    noisy_measurement_us,
    workgroup_pressure,
)
from repro.runtime.trace import LaunchRecord, Trace


def plain_plan(chip, **overrides):
    plan = KernelPlan(
        kernel=relax_kernel("k", "x"), wg_size=128, sg_size=chip.sg_size
    )
    return plan.with_(**overrides) if overrides else plan


def record(**kwargs):
    base = dict(
        kernel="k", iteration=0, in_fixpoint=True,
        active_items=1000, expanded_items=1000, edges=5000,
    )
    base.update(kwargs)
    return LaunchRecord(**base)


class TestDivergence:
    def test_no_irregularity_no_penalty(self):
        chip = get_chip("MALI")
        assert divergence_factor(chip, plain_plan(chip), 0.0) == 1.0

    def test_penalty_scales_with_sensitivity(self):
        mali = get_chip("MALI")
        r9 = get_chip("R9")
        assert divergence_factor(mali, plain_plan(mali), 0.8) > divergence_factor(
            r9, plain_plan(r9), 0.8
        )

    def test_inner_barriers_relieve(self):
        chip = get_chip("MALI")
        plan = plain_plan(chip)
        relieved = plan.with_(sg_scheme=True, wg_barriers_per_chunk=1.0)
        assert divergence_factor(chip, relieved, 0.8) < divergence_factor(
            chip, plan, 0.8
        )

    def test_wg_scheme_alone_does_not_relieve(self):
        chip = get_chip("MALI")
        wg_only = plain_plan(chip).with_(wg_scheme=True, wg_barriers_per_chunk=2.0)
        assert divergence_factor(chip, wg_only, 0.8) == divergence_factor(
            chip, plain_plan(chip), 0.8
        )

    def test_workgroup_pressure(self):
        assert workgroup_pressure(128) == 1.0
        assert workgroup_pressure(256) > 1.0


class TestAtomics:
    def test_combine_factor_trivial_subgroup(self):
        assert achieved_combine_factor(1, 1000, 1000, 0.5) == 1.0

    def test_combine_factor_no_pushes(self):
        assert achieved_combine_factor(32, 0, 1000, 0.5) == 1.0

    def test_combine_factor_sparse_pushes(self):
        dense = achieved_combine_factor(32, 1000, 1000, 0.5)
        sparse = achieved_combine_factor(32, 10, 1000, 0.5)
        assert dense > sparse

    def test_combine_factor_bounded_by_subgroup(self):
        assert achieved_combine_factor(64, 10**6, 10**6, 1.0) <= 64

    def test_coop_gains_nothing_on_jit_chip(self):
        chip = get_chip("GTX1080")  # JIT combines already
        rec = record(pushes=10_000)
        base = atomic_time_us(chip, plain_plan(chip), rec)
        coop = atomic_time_us(
            chip, plain_plan(chip).with_(coop_scope="subgroup"), rec
        )
        assert coop >= base  # only orchestration is added

    def test_coop_wins_on_r9(self):
        chip = get_chip("R9")
        rec = record(pushes=10_000)
        base = atomic_time_us(chip, plain_plan(chip), rec)
        coop = atomic_time_us(
            chip, plain_plan(chip).with_(coop_scope="subgroup"), rec
        )
        assert coop < base / 5

    def test_uncontended_cheaper_than_contended(self):
        chip = get_chip("R9")
        contended = atomic_time_us(chip, plain_plan(chip), record(pushes=5000))
        uncontended = atomic_time_us(
            chip, plain_plan(chip), record(uncontended_rmws=5000)
        )
        assert uncontended < contended


class TestHostOverhead:
    def _trace(self, n_iters=50):
        trace = Trace(program="p", graph="g")
        trace.add(LaunchRecord("init", -1, False, 10, 0, 0))
        for i in range(n_iters):
            trace.add(LaunchRecord("k", i, True, 10, 5, 20))
        return trace

    def _plans(self, chip):
        init = Kernel("init", IterationSpace.ALL_NODES, ops=[Store("x")])
        program = fixpoint_program(
            "p", [relax_kernel("k", "x")], init_kernel=init
        )
        return (
            compile_program(program, chip, OptConfig()),
            compile_program(program, chip, OptConfig(oitergb=True)),
        )

    def test_outlining_pays_off_on_high_latency_chip(self):
        chip = get_chip("MALI")
        base, outlined = self._plans(chip)
        trace = self._trace()
        assert host_overhead_us(outlined, trace) < host_overhead_us(base, trace)

    def test_outlining_hurts_on_nvidia(self):
        chip = get_chip("GTX1080")
        base, outlined = self._plans(chip)
        trace = self._trace()
        assert host_overhead_us(outlined, trace) > host_overhead_us(base, trace)

    def test_overhead_scales_with_iterations(self):
        chip = get_chip("IRIS")
        base, _ = self._plans(chip)
        assert host_overhead_us(base, self._trace(100)) > host_overhead_us(
            base, self._trace(10)
        )

    def test_global_barrier_cost_grows_with_workgroups(self):
        chip = get_chip("R9")
        assert global_barrier_us(chip, 500) > global_barrier_us(chip, 10)


class TestNoise:
    def test_deterministic_per_rep(self):
        chip = get_chip("MALI")
        a = noisy_measurement_us(1000.0, chip, "p", "g", "cfg", rep=0)
        b = noisy_measurement_us(1000.0, chip, "p", "g", "cfg", rep=0)
        assert a == b

    def test_reps_differ(self):
        chip = get_chip("MALI")
        values = {
            noisy_measurement_us(1000.0, chip, "p", "g", "cfg", rep=r)
            for r in range(3)
        }
        assert len(values) == 3

    def test_noise_scale_tracks_sigma(self):
        quiet = get_chip("GTX1080")
        loud = get_chip("MALI")

        def spread(chip):
            vals = [
                noisy_measurement_us(10_000.0, chip, "p", "g", "c", rep=r)
                for r in range(200)
            ]
            return np.std(vals) / np.mean(vals)

        assert spread(loud) > 2 * spread(quiet)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            noisy_measurement_us(-1.0, get_chip("R9"), "p", "g", "c", 0)

    def test_rng_keyed_on_all_coordinates(self):
        chip = get_chip("R9")
        base = measurement_rng(chip, "p", "g", "c", 0).normal()
        assert measurement_rng(chip, "p", "g", "c2", 0).normal() != base
        assert measurement_rng(chip, "p2", "g", "c", 0).normal() != base
