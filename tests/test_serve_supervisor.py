"""Unit tests for the serve fleet supervisor and the admin listener.

:class:`~repro.serve.supervisor.FleetSupervisor` is driven entirely
through fake process objects and a fake clock, so the whole
death → backoff → respawn → escalate lifecycle runs in microseconds.
The real-fleet behaviour (actual ``kill -9``, metric reconciliation,
exit codes) lives in ``test_serve_workers.py``.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.errors import ServeError
from repro.serve.supervisor import MAX_BACKOFF, AdminListener, FleetSupervisor


class FakeProc:
    """A process-like object the supervisor can supervise."""

    _next_pid = 1000

    def __init__(self, worker_id: int, incarnation: int) -> None:
        self.worker_id = worker_id
        self.incarnation = incarnation
        self.exitcode = None
        FakeProc._next_pid += 1
        self.pid = FakeProc._next_pid

    def is_alive(self) -> bool:
        return self.exitcode is None

    def die(self, code: int = -9) -> None:
        self.exitcode = code


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


@pytest.fixture()
def fleet():
    """(supervisor, clock, spawned-process log) with 2 slots."""
    clock = FakeClock()
    spawned = []

    def spawn(worker_id: int, incarnation: int) -> FakeProc:
        proc = FakeProc(worker_id, incarnation)
        spawned.append(proc)
        return proc

    sup = FleetSupervisor(
        spawn, 2, max_restarts=3, backoff_base=0.5, clock=clock
    )
    return sup, clock, spawned


class TestFleetSupervisor:
    def test_start_spawns_incarnation_zero_everywhere(self, fleet):
        sup, _, spawned = fleet
        sup.start()
        assert [(p.worker_id, p.incarnation) for p in spawned] == [
            (0, 0),
            (1, 0),
        ]
        assert sup.poll() == []  # a healthy fleet is event-free
        assert sup.stats()["alive"] == 2

    def test_death_backoff_respawn_cycle(self, fleet):
        sup, clock, spawned = fleet
        sup.start()
        spawned[0].die(-9)
        events = sup.poll()
        assert ("death", 0, -9) in events
        assert ("backoff", 0, 0.5) in events
        assert sup.deaths == 1
        # Not yet: the backoff deadline has not passed.
        assert sup.poll() == []
        assert len(spawned) == 2
        clock.advance(0.5)
        events = sup.poll()
        assert events == [("respawn", 0, 1)]
        assert spawned[-1].worker_id == 0
        assert spawned[-1].incarnation == 1
        assert sup.restarts == 1
        assert sup.stats()["alive"] == 2  # healed back to N

    def test_backoff_doubles_per_slot_and_caps(self, fleet):
        sup, clock, spawned = fleet
        sup.backoff_cap = 1.5
        sup.start()
        delays = []
        for _ in range(3):
            sup.slots[0].process.die(86)
            for event in sup.poll():
                if event[0] == "backoff":
                    delays.append(event[2])
            clock.advance(delays[-1])
            sup.poll()  # fire the respawn
        assert delays == [0.5, 1.0, 1.5]  # base, doubled, capped

    def test_escalates_once_the_global_budget_is_spent(self, fleet):
        sup, clock, spawned = fleet
        sup.start()
        for i in range(3):  # budget: max_restarts=3
            sup.slots[i % 2].process.die(1)
            sup.poll()
            clock.advance(MAX_BACKOFF)
            sup.poll()
        assert sup.restarts == 3
        sup.slots[0].process.die(1)
        events = sup.poll()
        assert ("escalate", 0, 3) in events
        assert sup.escalated
        # Latched: no further polls produce respawns.
        clock.advance(MAX_BACKOFF)
        assert sup.poll() == []
        assert len(spawned) == 2 + 3

    def test_sibling_deaths_in_the_escalating_scan_are_counted(self, fleet):
        """Escalation must not short-circuit the slot scan: a second
        worker dead in the same poll still gets its death event, deaths
        counter, and exit-code provenance — the shutdown summary must
        not undercount a multi-death crash loop."""
        sup, clock, spawned = fleet
        sup.start()
        for _ in range(3):  # spend the max_restarts=3 budget on slot 0
            sup.slots[0].process.die(1)
            sup.poll()
            clock.advance(MAX_BACKOFF)
            sup.poll()
        assert sup.restarts == 3
        # Both workers die in the same interval; the first escalates.
        sup.slots[0].process.die(-9)
        sup.slots[1].process.die(-6)
        events = sup.poll()
        assert ("death", 0, -9) in events
        assert ("death", 1, -6) in events
        assert ("escalate", 0, 3) in events
        assert sup.escalated
        assert sup.deaths == 5
        assert sup.slots[1].exit_codes == [-6]
        # And neither slot is respawned after escalation.
        assert len(spawned) == 2 + 3
        clock.advance(MAX_BACKOFF)
        assert sup.poll() == []

    def test_stopping_fleet_ignores_deaths(self, fleet):
        sup, clock, spawned = fleet
        sup.start()
        sup.stop()
        spawned[0].die(0)
        assert sup.poll() == []
        assert sup.deaths == 0
        assert not sup.all_exited()  # slot 1 still runs
        spawned[1].die(0)
        assert sup.all_exited()

    def test_stats_records_slot_provenance(self, fleet):
        sup, clock, spawned = fleet
        sup.start()
        spawned[1].die(86)
        sup.poll()
        clock.advance(0.5)
        sup.poll()
        stats = sup.stats()
        assert stats["workers"] == 2
        assert stats["deaths"] == 1
        assert stats["restarts"] == 1
        assert not stats["escalated"]
        assert stats["slots"]["1"]["restarts"] == 1
        assert stats["slots"]["1"]["exit_codes"] == [86]
        assert stats["slots"]["0"]["exit_codes"] == []

    def test_rejects_invalid_configuration(self):
        with pytest.raises(ServeError):
            FleetSupervisor(lambda w, i: None, 0)
        with pytest.raises(ServeError):
            FleetSupervisor(lambda w, i: None, 1, max_restarts=-1)
        with pytest.raises(ServeError):
            FleetSupervisor(lambda w, i: None, 1, backoff_base=-0.1)


class TestAdminListener:
    @pytest.fixture()
    def listener(self):
        calls = {"reload": 0}

        def on_reload() -> dict:
            calls["reload"] += 1
            return {"reloaded": True, "workers_signalled": 2}

        def on_health() -> dict:
            return {"workers": 2, "alive": 2}

        lst = AdminListener(0, on_reload, on_health)
        lst.start()
        try:
            yield lst, calls
        finally:
            lst.close()
            lst.join(timeout=5)

    def _request(self, port: int, method: str, target: str):
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        try:
            conn.request(method, target)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read())
        finally:
            conn.close()

    def test_reload_and_health_endpoints(self, listener):
        lst, calls = listener
        status, body = self._request(lst.port, "POST", "/admin/reload")
        assert status == 200
        assert body["reloaded"] is True
        assert calls["reload"] == 1
        status, body = self._request(lst.port, "GET", "/admin/health")
        assert status == 200
        assert body == {"workers": 2, "alive": 2}

    def test_unknown_endpoint_is_404(self, listener):
        lst, calls = listener
        status, body = self._request(lst.port, "GET", "/admin/nope")
        assert status == 404
        assert calls["reload"] == 0
        # Wrong method on a known path is also refused.
        status, _ = self._request(lst.port, "GET", "/admin/reload")
        assert status == 404
