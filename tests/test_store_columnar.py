"""Tests for the binary columnar ``perf-dataset-v3`` store.

Three layers:

* unit tests of the writer/reader pair — interning, conflicts, chunk
  concatenation, lazy verification, corruption and salvage;
* a Hypothesis property suite: any dataset (unicode axis names,
  NaN/inf/negative-zero timings, ragged repetition counts) survives a
  write/load round trip with *bitwise* float equality;
* the ``repro dataset`` CLI (convert / info / verify exit codes).
"""

from __future__ import annotations

import math
import os
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import BASELINE, OptConfig, enumerate_configs
from repro.errors import DatasetError
from repro.store import (
    COLUMNAR_FORMAT,
    COLUMNAR_MAGIC,
    ColumnWriter,
    ColumnarDataset,
    columnar_from_dataset,
    inspect_columnar,
    load_trace_cache,
    salvage_columnar,
    save_trace_cache,
    trace_cache_path,
    write_columnar,
)
from repro.store.cli import main as dataset_cli
from repro.study.audit import audit_dataset
from repro.study.dataset import PerfDataset, TestCase, peek_format

CONFIGS = enumerate_configs()


def _bits(x: float) -> bytes:
    return struct.pack("<d", x)


def _same_times(a, b) -> bool:
    """Bitwise float-sequence equality (NaN payloads, -0.0 included)."""
    return len(a) == len(b) and all(
        _bits(x) == _bits(y) for x, y in zip(a, b)
    )


def _cfg(key: str) -> OptConfig:
    return OptConfig() if key == "baseline" else OptConfig.from_names(
        key.split("+")
    )


def _assert_equivalent(columnar: PerfDataset, original: PerfDataset):
    """Cell-exact equivalence, robust to NaN (unlike a naive ``==``)."""
    assert columnar.tests == original.tests
    assert [c.key() for c in columnar.configs] == [
        c.key() for c in original.configs
    ]
    assert columnar.n_measurements == original.n_measurements
    for test, key, times in original.iter_cells():
        got = columnar.times_or_none(test, _cfg(key))
        assert got is not None, (test, key)
        assert _same_times(got, times), (test, key, got, times)


def _small_dataset() -> PerfDataset:
    ds = PerfDataset()
    for chip in ("C1", "C2"):
        for app in ("bfs", "pr"):
            test = TestCase(app, "g1", chip)
            ds.add(test, BASELINE, [1.0, 2.0, 3.0])
            ds.add(test, CONFIGS[5], [0.5, 0.25])
    return ds


@pytest.fixture
def v3_path(tmp_path):
    return str(tmp_path / "ds.v3")


# -- round trip ---------------------------------------------------------------


class TestRoundTrip:
    def test_small_dataset_round_trips(self, v3_path):
        ds = _small_dataset()
        write_columnar(ds, v3_path)
        loaded = ColumnarDataset.load(v3_path)
        _assert_equivalent(loaded, ds)
        assert loaded == ds  # no NaNs here, plain equality also holds
        loaded.close()

    def test_empty_dataset_round_trips(self, v3_path):
        write_columnar(PerfDataset(), v3_path)
        loaded = ColumnarDataset.load(v3_path)
        assert len(loaded) == 0
        assert loaded.n_measurements == 0
        assert list(loaded.iter_cells()) == []

    def test_load_dispatch_via_perfdataset(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        loaded = PerfDataset.load(v3_path)
        assert isinstance(loaded, ColumnarDataset)

    def test_save_autodetects_v3_extension(self, v3_path):
        ds = _small_dataset()
        ds.save(v3_path)
        assert peek_format(v3_path) == COLUMNAR_FORMAT
        assert PerfDataset.load(v3_path) == ds

    def test_save_explicit_format_overrides_extension(self, tmp_path):
        ds = _small_dataset()
        path = str(tmp_path / "ds.bin")
        ds.save(path, format="v3")
        assert peek_format(path) == COLUMNAR_FORMAT

    def test_save_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError, match="unknown dataset format"):
            _small_dataset().save(str(tmp_path / "x"), format="v9")

    def test_from_payload_and_memory_build(self):
        ds = _small_dataset()
        cd = columnar_from_dataset(ds)
        assert isinstance(cd, ColumnarDataset)
        assert cd == ds

    def test_deterministic_bytes(self, tmp_path):
        ds = _small_dataset()
        a, b = str(tmp_path / "a.v3"), str(tmp_path / "b.v3")
        write_columnar(ds, a)
        write_columnar(ds, b)
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_insertion_order_preserved(self, v3_path):
        ds = PerfDataset()
        # Deliberately interleave configs so order != sorted order.
        t1, t2 = TestCase("z", "g", "C2"), TestCase("a", "g", "C1")
        ds.add(t1, CONFIGS[7], [1.0])
        ds.add(t2, BASELINE, [2.0])
        ds.add(t1, BASELINE, [3.0])
        write_columnar(ds, v3_path)
        loaded = ColumnarDataset.load(v3_path)
        assert loaded.tests == [t1, t2]
        assert [c.key() for c in loaded.configs] == [
            CONFIGS[7].key(),
            BASELINE.key(),
        ]

    def test_analysis_protocol_parity(self, v3_path):
        ds = _small_dataset()
        write_columnar(ds, v3_path)
        cd = ColumnarDataset.load(v3_path)
        test = ds.tests[0]
        assert cd.has(test, BASELINE)
        assert cd.times(test, BASELINE) == ds.times(test, BASELINE)
        assert cd.median(test, BASELINE) == ds.median(test, BASELINE)
        assert cd.times_or_none(test, CONFIGS[3]) is None
        assert cd.coverage().fraction == ds.coverage().fraction
        assert cd.apps == ds.apps
        assert cd.chips == ds.chips
        assert cd.graphs == ds.graphs

    def test_audit_works_on_columnar(self, v3_path):
        ds = _small_dataset()
        ds.add(TestCase("bad", "g1", "C1"), BASELINE, [float("nan"), 1.0])
        write_columnar(ds, v3_path)
        audit = audit_dataset(ColumnarDataset.load(v3_path))
        assert len(audit.quarantined) == 1
        assert audit.quarantined[0].test.app == "bad"


# -- read-only contract -------------------------------------------------------


class TestReadOnly:
    def test_add_raises(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        cd = ColumnarDataset.load(v3_path)
        with pytest.raises(DatasetError, match="read-only"):
            cd.add(TestCase("x", "y", "C1"), BASELINE, [1.0])

    def test_update_raises(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        cd = ColumnarDataset.load(v3_path)
        with pytest.raises(DatasetError, match="read-only"):
            cd.update(_small_dataset())

    def test_direct_construction_rejected(self):
        with pytest.raises(TypeError):
            ColumnarDataset()

    def test_subset_returns_mutable_dataset(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        cd = ColumnarDataset.load(v3_path)
        sub = cd.subset(t for t in cd.tests if t.chip == "C1")
        assert type(sub) is PerfDataset
        assert sub.chips == ["C1"]


# -- writer -------------------------------------------------------------------


class TestColumnWriter:
    def test_identical_readd_is_noop(self):
        w = ColumnWriter()
        t = TestCase("a", "g", "C1")
        w.add(t, BASELINE, [1.0, 2.0])
        w.add(t, BASELINE, [1.0, 2.0])
        assert w.n_cells == 1

    def test_conflicting_readd_raises(self):
        w = ColumnWriter()
        t = TestCase("a", "g", "C1")
        w.add(t, BASELINE, [1.0, 2.0])
        with pytest.raises(DatasetError, match="conflict"):
            w.add(t, BASELINE, [9.0])

    def test_empty_times_rejected(self):
        with pytest.raises(DatasetError, match="no timings"):
            ColumnWriter().add(TestCase("a", "g", "C1"), BASELINE, [])

    def test_append_chunk_equals_direct_add(self, tmp_path):
        ds = _small_dataset()
        cells = list(ds.iter_cells())
        half = len(cells) // 2
        chunks = []
        for i, part in enumerate((cells[:half], cells[half:])):
            w = ColumnWriter()
            for test, key, times in part:
                w.add(test, key, times)
            path = str(tmp_path / f"chunk{i}.v3")
            w.commit(path)
            chunks.append(path)
        merged = ColumnWriter()
        for path in chunks:
            chunk = ColumnarDataset.load(path)
            merged.append_chunk(chunk)
            chunk.close()
        direct = ColumnWriter()
        for test, key, times in cells:
            direct.add(test, key, times)
        assert merged.payload() == direct.payload()

    def test_append_chunk_with_overlap_falls_back_to_add(self, tmp_path):
        ds = _small_dataset()
        path = str(tmp_path / "c.v3")
        write_columnar(ds, path)
        w = ColumnWriter()
        first = next(iter(ds.iter_cells()))
        w.add(*first)
        chunk = ColumnarDataset.load(path)
        w.append_chunk(chunk)  # shares `first` -> per-cell path
        chunk.close()
        assert w.n_cells == ds.n_measurements
        assert ColumnarDataset.from_payload(w.payload()) == ds


# -- corruption, verification, salvage ---------------------------------------


def _flip_byte(path: str, offset: int) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


class TestIntegrity:
    def test_header_corruption_fails_load(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        _flip_byte(v3_path, 16)  # inside the counts block
        with pytest.raises(DatasetError, match="corrupt dataset"):
            ColumnarDataset.load(v3_path)

    def test_bad_magic_fails_load(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        _flip_byte(v3_path, 0)
        with pytest.raises(DatasetError):
            ColumnarDataset.load(v3_path)

    def test_string_table_corruption_fails_load(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        info = inspect_columnar(v3_path)
        _flip_byte(v3_path, info["sections"]["strings"]["offset"] + 6)
        with pytest.raises(DatasetError):
            ColumnarDataset.load(v3_path)

    def test_times_corruption_is_lazy(self, v3_path):
        """Load stays cheap: the timing column is only hashed by verify()."""
        write_columnar(_small_dataset(), v3_path)
        info = inspect_columnar(v3_path)
        sec = info["sections"]["times"]
        _flip_byte(v3_path, sec["offset"] + sec["bytes"] - 4)
        cd = ColumnarDataset.load(v3_path)  # loads fine
        with pytest.raises(DatasetError, match="times"):
            cd.verify()

    def test_truncation_fails_load(self, v3_path):
        write_columnar(_small_dataset(), v3_path)
        data = open(v3_path, "rb").read()
        open(v3_path, "wb").write(data[: len(data) - 20])
        with pytest.raises(DatasetError, match="truncated|exceeds"):
            ColumnarDataset.load(v3_path)

    def test_salvage_recovers_prefix_of_truncated_file(self, v3_path):
        ds = _small_dataset()
        write_columnar(ds, v3_path)
        info = inspect_columnar(v3_path)
        sec = info["sections"]["times"]
        # Keep the index columns and half the timing column.
        keep = sec["offset"] + sec["bytes"] // 2
        data = open(v3_path, "rb").read()
        open(v3_path, "wb").write(data[:keep])
        partial, salvaged, declared, notes = salvage_columnar(v3_path)
        assert declared == ds.n_measurements
        assert 0 < salvaged < declared
        assert partial.n_measurements == salvaged
        assert notes  # explains where it stopped
        # Salvaged cells match the original exactly, in original order.
        for (test, key, times), (otest, okey, otimes) in zip(
            partial.iter_cells(), ds.iter_cells()
        ):
            assert (test, key) == (otest, okey)
            assert _same_times(times, otimes)

    def test_inspect_reports_axes_and_sections(self, v3_path):
        ds = _small_dataset()
        write_columnar(ds, v3_path)
        info = inspect_columnar(v3_path)
        assert info["format"] == COLUMNAR_FORMAT
        assert info["tests"] == len(ds)
        assert info["cells"] == ds.n_measurements
        assert sorted(info["chips"]) == ["C1", "C2"]
        assert set(info["sections"]) == {
            "strings",
            "tests",
            "cells",
            "offsets",
            "times",
        }


# -- trace cache --------------------------------------------------------------


class TestTraceCache:
    def test_round_trip(self, tmp_path):
        path = trace_cache_path(str(tmp_path), "ab12cd34ef567890")
        traces = {("bfs", "g1"): ["fake-trace"]}
        assert save_trace_cache(path, "ab12cd34ef567890", traces) is True
        assert load_trace_cache(path, fingerprint="ab12cd34ef567890") == traces

    def test_write_once_keeps_valid_existing(self, tmp_path):
        fp = "ab12cd34ef567890"
        path = trace_cache_path(str(tmp_path), fp)
        save_trace_cache(path, fp, {"v": 1})
        assert save_trace_cache(path, fp, {"v": 2}) is False
        assert load_trace_cache(path) == {"v": 1}

    def test_stale_fingerprint_rejected(self, tmp_path):
        path = trace_cache_path(str(tmp_path), "ab12cd34ef567890")
        save_trace_cache(path, "ab12cd34ef567890", {"v": 1})
        with pytest.raises(DatasetError, match="fingerprint"):
            load_trace_cache(path, fingerprint="0000000000000000")

    def test_corrupt_cache_rejected(self, tmp_path):
        path = trace_cache_path(str(tmp_path), "ab12cd34ef567890")
        save_trace_cache(path, "ab12cd34ef567890", {"v": 1})
        _flip_byte(path, os.path.getsize(path) - 1)
        with pytest.raises(DatasetError):
            load_trace_cache(path)


# -- CLI ----------------------------------------------------------------------


class TestDatasetCli:
    def test_convert_info_verify(self, tmp_path, capsys):
        src = str(tmp_path / "src.json")
        dst = str(tmp_path / "dst.v3")
        _small_dataset().save(src)
        assert dataset_cli(["convert", src, dst]) == 0
        assert dataset_cli(["info", dst]) == 0
        out = capsys.readouterr().out
        assert COLUMNAR_FORMAT in out
        assert dataset_cli(["verify", dst]) == 0
        back = str(tmp_path / "back.json.gz")
        assert dataset_cli(["convert", dst, back]) == 0
        assert PerfDataset.load(back) == _small_dataset()

    def test_info_json_mode(self, tmp_path, capsys):
        import json

        dst = str(tmp_path / "d.v3")
        write_columnar(_small_dataset(), dst)
        assert dataset_cli(["info", dst, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == COLUMNAR_FORMAT

    def test_verify_fails_on_damage(self, tmp_path, capsys):
        dst = str(tmp_path / "d.v3")
        write_columnar(_small_dataset(), dst)
        sec = inspect_columnar(dst)["sections"]["times"]
        _flip_byte(dst, sec["offset"] + 1)
        assert dataset_cli(["verify", dst]) == 1

    def test_convert_missing_input_fails(self, tmp_path, capsys):
        assert dataset_cli(["convert", str(tmp_path / "no.json"), "o.v3"]) == 1

    def test_no_verb_is_usage_error(self, capsys):
        assert dataset_cli([]) == 2


# -- Hypothesis property suite ------------------------------------------------

_name = st.text(
    alphabet=st.characters(
        whitelist_categories=("L", "N"), max_codepoint=0x2FFF
    ),
    min_size=1,
    max_size=6,
)

# PerfDataset.add rejects non-positive timings; NaN and +inf pass its
# gate (and get quarantined downstream), so they belong in the strategy.
_time = st.one_of(
    st.floats(min_value=1e-12, max_value=1e15, allow_nan=False),
    st.just(float("nan")),
    st.just(float("inf")),
)

_times = st.lists(_time, min_size=1, max_size=4)


@st.composite
def _datasets(draw):
    apps = draw(st.lists(_name, min_size=1, max_size=2, unique=True))
    graphs = draw(st.lists(_name, min_size=1, max_size=2, unique=True))
    chips = draw(st.lists(_name, min_size=1, max_size=2, unique=True))
    config_idx = draw(
        st.lists(
            st.integers(0, len(CONFIGS) - 1),
            min_size=1,
            max_size=3,
            unique=True,
        )
    )
    ds = PerfDataset()
    for app in apps:
        for graph in graphs:
            for chip in chips:
                test = TestCase(app, graph, chip)
                for idx in config_idx:
                    if draw(st.booleans()):
                        ds.add(test, CONFIGS[idx], draw(_times))
    return ds


class TestRoundTripProperties:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ds=_datasets())
    def test_any_dataset_round_trips_bitwise(self, ds, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("prop") / "ds.v3")
        write_columnar(ds, path)
        loaded = ColumnarDataset.load(path)
        try:
            _assert_equivalent(loaded, ds)
            # And the reverse direction: every columnar cell exists in
            # the original (no invented cells).
            for test, key, times in loaded.iter_cells():
                orig = ds.times_or_none(test, _cfg(key))
                assert orig is not None
                assert _same_times(times, orig)
        finally:
            loaded.close()

    @settings(max_examples=20, deadline=None)
    @given(ds=_datasets())
    def test_memory_build_matches_file_build(self, ds, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("mem") / "ds.v3")
        write_columnar(ds, path)
        from_file = ColumnarDataset.load(path)
        in_memory = columnar_from_dataset(ds)
        try:
            assert from_file.tests == in_memory.tests
            assert from_file.n_measurements == in_memory.n_measurements
            for test, key, times in from_file.iter_cells():
                assert _same_times(
                    times, in_memory.times(test, _cfg(key))
                )
        finally:
            from_file.close()
