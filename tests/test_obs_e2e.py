"""End-to-end metrics through the real CLI.

Runs ``python -m repro study --metrics`` in subprocesses — fresh, and
killed-then-resumed — and checks the persisted RunReport artifacts
reconcile: every shard of the grid is accounted for exactly once, in
the fresh run and across the interrupt/resume pair.  Also smoke-tests
``python -m repro profile`` on the artifact a user would have on disk.
"""

import os
import subprocess
import sys

import pytest

from repro.faults import FaultPlan
from repro.obs import RunReport

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The full study grid: 6 chips x 96 configurations.
GRID = 6 * 96

STUDY_ARGS = ["--scale", "0.05", "--repetitions", "1", "--jobs", "2"]


def _run_cli(command, args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", command, *args],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    return tmp_path_factory.mktemp("obs-e2e")


class TestMetricsE2E:
    def test_fresh_run_report_reconciles(self, workdir):
        out = str(workdir / "fresh.json")
        metrics = str(workdir / "fresh-report.json")
        result = _run_cli(
            "study", [out, *STUDY_ARGS, "--no-checkpoint", "--metrics", metrics]
        )
        assert result.returncode == 0, result.stderr
        assert "wrote run report" in result.stderr
        assert "study.shards.priced" in result.stderr  # rendered summary

        report = RunReport.load(metrics)
        assert report.gauges["study.shards.total"] == GRID
        assert report.counter("study.shards.priced") == GRID
        assert report.counter("study.shards.skipped_checkpoint") == 0
        assert not report.prior
        assert report.meta["engine"] == "batch"
        assert report.meta["jobs"] == 2
        # Worker spans crossed the process boundary into the artifact.
        shard_spans = [
            s for s in report.spans if s["name"] == "study.price_shard"
        ]
        assert len(shard_spans) == GRID
        # Tracing skips (weighted apps on unweighted graphs) are
        # accounted for: collected + skipped covers the app x input grid.
        assert (
            report.counter("study.traces.collected")
            + report.counter("study.traces.skipped")
            == 17 * 3
        )

    def test_profile_renders_the_artifact(self, workdir):
        metrics = str(workdir / "fresh-report.json")
        assert os.path.exists(metrics), "run the fresh test first"
        result = _run_cli("profile", [metrics])
        assert result.returncode == 0, result.stderr
        assert "study.shards.priced" in result.stdout
        assert "Slowest spans" in result.stdout

        missing = _run_cli("profile", [str(workdir / "nope.json")])
        assert missing.returncode == 1

    def test_killed_then_resumed_reports_reconcile(self, workdir):
        out = str(workdir / "resumed.json")
        ckpt = str(workdir / "resumed.ckpt")
        spool = str(workdir / "faults")
        metrics = str(workdir / "resumed-report.json")
        FaultPlan(spool).arm("interrupt", "shard-2-40")

        interrupted = _run_cli(
            "study",
            [
                out,
                *STUDY_ARGS,
                "--checkpoint",
                ckpt,
                "--faults",
                spool,
                "--metrics",
                metrics,
            ],
        )
        assert interrupted.returncode == 130, interrupted.stderr
        # No dataset, no report — but the checkpoint holds the metrics
        # sidecar for the resumed run to pick up.
        assert not os.path.exists(metrics)
        assert os.path.exists(os.path.join(ckpt, "metrics.json"))

        resumed = _run_cli(
            "study",
            [
                out,
                *STUDY_ARGS,
                "--checkpoint",
                ckpt,
                "--resume",
                "--metrics",
                metrics,
            ],
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "Incl. prior runs" in resumed.stderr  # merged summary

        report = RunReport.load(metrics)
        priced = report.counter("study.shards.priced")
        skipped = report.counter("study.shards.skipped_checkpoint")
        assert priced + skipped == GRID, "this run double- or under-counted"
        assert 0 < skipped < GRID
        # The prior (interrupted) segment priced exactly the shards this
        # run skipped, so the merged total covers the grid exactly once.
        assert report.prior
        assert report.total_counter("study.shards.priced") == GRID
        assert report.meta["resumed"] is True
