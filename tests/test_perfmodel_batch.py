"""Golden equivalence tests: the batch engine vs. the scalar oracle.

The vectorized pricing path must be *bit-identical* to the scalar
reference — every comparison here is exact float equality, never
approximate.  The scalar path (:mod:`repro.perfmodel.simulate` /
:mod:`repro.perfmodel.cost`) stays the oracle; any future change that
breaks these tests is a change to the model, not an allowed
"tolerance" of the batch engine.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import compile_program, enumerate_configs
from repro.errors import ExecutionError
from repro.graphs import rmat_graph, road_network
from repro.perfmodel import (
    estimate_runtime_us,
    estimate_runtime_us_batch,
    launch_cost,
    measure_repeats_us,
    measure_repeats_us_batch,
    measurement_prefix,
    measurement_seeds,
    noise_from_seed,
    noisy_measurement_us,
    price_trace_batch,
)
from repro.runtime.trace import TraceArrays
from repro.util import fnv1a_extend, fnv1a_state, stable_hash


@pytest.fixture(scope="module")
def traced_runs():
    """(app, trace) pairs covering worklist, frontier and topology apps."""
    road = road_network(14, 14, seed=11, name="eq-road")
    rmat = rmat_graph(8, edge_factor=8, seed=11, name="eq-rmat")
    pairs = []
    for app_name in ("bfs-wl", "sssp-nf", "pr-topo"):
        app = get_application(app_name)
        for graph in (road, rmat):
            pairs.append((app, app.run(graph, source=0).trace))
    return pairs


class TestTraceArrays:
    def test_cached_on_trace(self, traced_runs):
        _, trace = traced_runs[0]
        assert trace.arrays() is trace.arrays()

    def test_cache_invalidated_by_append(self, traced_runs):
        _, trace = traced_runs[0]
        first = trace.arrays()
        record = trace.launches[-1]
        trace.add(record)
        try:
            second = trace.arrays()
            assert second is not first
            assert second.n_launches == first.n_launches + 1
        finally:
            trace.launches.pop()
            del trace._arrays_cache

    def test_groups_partition_the_launches(self, traced_runs):
        for _, trace in traced_runs:
            arrays = trace.arrays()
            seen = np.concatenate([g.indices for g in arrays.groups])
            assert sorted(seen.tolist()) == list(range(trace.n_launches))
            for group in arrays.groups:
                assert group.deg_hist.shape == (group.n, group.width)
                assert group.deg_hist.flags["C_CONTIGUOUS"]

    def test_summary_counts_match_trace(self, traced_runs):
        for _, trace in traced_runs:
            arrays = trace.arrays()
            inside = sum(1 for r in trace.launches if r.in_fixpoint)
            assert arrays.n_inside_fixpoint == inside
            assert arrays.n_outside_fixpoint == trace.n_launches - inside
            assert arrays.n_fixpoint_iterations == trace.n_fixpoint_iterations


class TestSeedScheme:
    """The FNV-1a prefix/extend split must reproduce stable_hash."""

    def test_split_equals_stable_hash(self):
        assert (
            fnv1a_extend(fnv1a_state("a", "b"), "c", 2)
            == stable_hash("a", "b", "c", 2)
        )

    def test_measurement_seeds_match_scalar_hash(self):
        chip = get_chip("MALI")
        prefix = measurement_prefix(chip, "bfs-wl", "eq-road")
        seeds = measurement_seeds(
            chip, "bfs-wl", "eq-road", "sg+fg8", 3, prefix=prefix
        )
        assert seeds == [
            stable_hash(chip.short_name, "bfs-wl", "eq-road", "sg+fg8", rep)
            for rep in range(3)
        ]

    def test_noise_from_seed_matches_noisy_measurement(self):
        chip = get_chip("GTX1080")
        seed = stable_hash(chip.short_name, "p", "g", "baseline", 1)
        assert noise_from_seed(123.5, chip, seed) == noisy_measurement_us(
            123.5, chip, "p", "g", "baseline", 1
        )


class TestGoldenEquivalence:
    """Exact equality of the batch engine against the scalar oracle."""

    CHIPS = ("GTX1080", "R9", "MALI", "M4000", "HD5500", "IRIS")

    def _plans(self, app, chips, configs):
        program = app.program()
        return [
            compile_program(program, get_chip(c), cfg)
            for c in chips
            for cfg in configs
        ]

    def test_per_launch_components_identical(self, traced_runs):
        configs = enumerate_configs()[::7]  # a spread of the 96
        for app, trace in traced_runs:
            arrays = trace.arrays()
            for plan in self._plans(app, self.CHIPS[:3], configs):
                costs = price_trace_batch(plan, arrays)
                for i, record in enumerate(trace.launches):
                    kplan = plan.kernel_plan(record.kernel)
                    scalar = launch_cost(plan, kplan, record)
                    assert costs.scan_us[i] == scalar.scan_us
                    assert costs.edge_us[i] == scalar.edge_us
                    assert costs.barrier_us[i] == scalar.barrier_us
                    assert costs.local_us[i] == scalar.local_us
                    assert costs.atomic_us[i] == scalar.atomic_us
                    assert costs.total_us[i] == scalar.total_us

    def test_estimates_identical_all_configs(self, traced_runs):
        for app, trace in traced_runs:
            for plan in self._plans(app, self.CHIPS, enumerate_configs()[::5]):
                assert estimate_runtime_us_batch(
                    plan, trace.arrays()
                ) == estimate_runtime_us(plan, trace)

    def test_measurements_identical(self, traced_runs):
        for app, trace in traced_runs:
            for plan in self._plans(app, self.CHIPS[:3], enumerate_configs()[::9]):
                chip = plan.chip
                prefix = measurement_prefix(chip, trace.program, trace.graph)
                seeds = measurement_seeds(
                    chip, trace.program, trace.graph, plan.config.key(), 3,
                    prefix=prefix,
                )
                assert measure_repeats_us_batch(
                    plan, trace, 3, seeds=seeds
                ) == measure_repeats_us(plan, trace, 3)

    def test_program_mismatch_raises(self, traced_runs):
        app, _ = traced_runs[0]
        _, other_trace = traced_runs[-1]
        plan = self._plans(app, ("R9",), enumerate_configs()[:1])[0]
        with pytest.raises(ExecutionError):
            estimate_runtime_us_batch(plan, other_trace.arrays())

    def test_seed_count_mismatch_raises(self, traced_runs):
        app, trace = traced_runs[0]
        plan = self._plans(app, ("R9",), enumerate_configs()[:1])[0]
        with pytest.raises(ValueError):
            measure_repeats_us_batch(plan, trace, 3, seeds=[1, 2])

    def test_precomputed_true_us_shared(self, traced_runs):
        """Satellite: the estimate is priced once and reused verbatim."""
        app, trace = traced_runs[0]
        plan = self._plans(app, ("MALI",), enumerate_configs()[:1])[0]
        true_us = estimate_runtime_us(plan, trace)
        assert measure_repeats_us(
            plan, trace, 3, true_us=true_us
        ) == measure_repeats_us(plan, trace, 3)


class TestGroupMemo:
    def test_memo_reuses_intermediates(self, traced_runs):
        _, trace = traced_runs[0]
        arrays = TraceArrays.from_trace(trace)
        group = arrays.groups[0]
        calls = []
        a = group.memo("k", lambda: calls.append(1) or np.ones(3))
        b = group.memo("k", lambda: calls.append(1) or np.ones(3))
        assert a is b and calls == [1]

    def test_memo_dropped_on_pickle(self, traced_runs):
        import pickle

        _, trace = traced_runs[0]
        group = TraceArrays.from_trace(trace).groups[0]
        group.memo("k", lambda: np.ones(3))
        clone = pickle.loads(pickle.dumps(group))
        assert clone._cache == {}
        assert np.array_equal(clone.edges, group.edges)


# -- differential fuzzing ----------------------------------------------------

from repro.graphs.inputs import StudyInput  # noqa: E402
from repro.study import StudyConfig, run_study  # noqa: E402

_FUZZ_APPS = ("bfs-wl", "pr-topo", "sssp-nf")
_FUZZ_CHIPS = ("GTX1080", "MALI", "R9", "HD5500")


@st.composite
def small_studies(draw) -> StudyConfig:
    """A random tiny StudyConfig (1-2 apps x 1 input x 1-2 chips)."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    app_names = draw(
        st.lists(
            st.sampled_from(_FUZZ_APPS), min_size=1, max_size=2, unique=True
        )
    )
    chip_names = draw(
        st.lists(
            st.sampled_from(_FUZZ_CHIPS), min_size=1, max_size=2, unique=True
        )
    )
    log_nodes = draw(st.integers(min_value=4, max_value=6))
    offset = draw(st.integers(min_value=0, max_value=10))
    stride = draw(st.integers(min_value=17, max_value=48))
    repetitions = draw(st.integers(min_value=1, max_value=3))
    graph = rmat_graph(log_nodes, edge_factor=6, seed=seed, name=f"fz-{seed}")
    return StudyConfig(
        apps=[get_application(name) for name in app_names],
        inputs={
            graph.name: StudyInput(
                name=graph.name,
                input_class="social",
                description="fuzzed rmat",
                _builder=lambda: graph,
            )
        },
        chips=[get_chip(name) for name in chip_names],
        configs=enumerate_configs()[offset::stride],
        repetitions=repetitions,
    )


class TestEngineFuzz:
    """Differential fuzzing: both engines price any study identically."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(config=small_studies())
    def test_batch_equals_scalar_on_random_studies(self, config):
        assert run_study(config, engine="batch") == run_study(
            config, engine="scalar"
        )
