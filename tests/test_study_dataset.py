"""Tests for the performance dataset."""

import json
import os

import pytest

from repro.compiler import BASELINE, OptConfig
from repro.errors import DatasetError
from repro.faults import FaultPlan
from repro.study import PerfDataset, TestCase


@pytest.fixture
def dataset():
    ds = PerfDataset()
    cfg_a = OptConfig(sg=True)
    cfg_b = OptConfig(fg=8)
    for chip in ("C1", "C2"):
        for app in ("a1", "a2"):
            base_time = 100.0 if chip == "C1" else 200.0
            ds.add(TestCase(app, "g1", chip), BASELINE, [base_time] * 3)
            ds.add(TestCase(app, "g1", chip), cfg_a, [base_time * 0.5] * 3)
            ds.add(TestCase(app, "g1", chip), cfg_b, [base_time * 2.0] * 3)
    return ds


class TestPopulation:
    def test_axes(self, dataset):
        assert dataset.apps == ["a1", "a2"]
        assert dataset.graphs == ["g1"]
        assert dataset.chips == ["C1", "C2"]
        assert len(dataset) == 4
        assert dataset.n_measurements == 12

    def test_rejects_empty_times(self):
        ds = PerfDataset()
        with pytest.raises(DatasetError):
            ds.add(TestCase("a", "g", "c"), BASELINE, [])

    def test_rejects_non_positive_times(self):
        ds = PerfDataset()
        with pytest.raises(DatasetError):
            ds.add(TestCase("a", "g", "c"), BASELINE, [1.0, -2.0])

    def test_overwrite_replaces(self, dataset):
        test = TestCase("a1", "g1", "C1")
        dataset.add(test, BASELINE, [7.0, 7.0, 7.0])
        assert dataset.median(test, BASELINE) == 7.0
        assert dataset.n_measurements == 12


class TestQueries:
    def test_times_and_median(self, dataset):
        test = TestCase("a1", "g1", "C1")
        assert dataset.times(test, BASELINE) == (100.0, 100.0, 100.0)
        assert dataset.median(test, OptConfig(sg=True)) == 50.0

    def test_missing_measurement(self, dataset):
        with pytest.raises(DatasetError):
            dataset.times(TestCase("zz", "g1", "C1"), BASELINE)
        with pytest.raises(DatasetError):
            dataset.times(TestCase("a1", "g1", "C1"), OptConfig(wg=True))

    def test_has(self, dataset):
        assert dataset.has(TestCase("a1", "g1", "C1"), BASELINE)
        assert not dataset.has(TestCase("a1", "g1", "C1"), OptConfig(wg=True))

    def test_best_config(self, dataset):
        best = dataset.best_config(TestCase("a1", "g1", "C1"))
        assert best == OptConfig(sg=True)

    def test_best_config_restricted(self, dataset):
        best = dataset.best_config(
            TestCase("a1", "g1", "C1"), configs=[BASELINE, OptConfig(fg=8)]
        )
        assert best == BASELINE

    def test_tests_where(self, dataset):
        assert len(dataset.tests_where(chip="C1")) == 2
        assert len(dataset.tests_where(app="a1")) == 2
        assert len(dataset.tests_where(app="a1", chip="C2")) == 1
        assert dataset.tests_where(graph="nope") == []

    def test_subset(self, dataset):
        sub = dataset.subset(dataset.tests_where(chip="C1"))
        assert sub.chips == ["C1"]
        assert sub.n_measurements == 6

    def test_iter_measurements(self, dataset):
        seen = list(dataset.iter_measurements())
        assert len(seen) == 12
        test, config, times = seen[0]
        assert isinstance(test, TestCase)
        assert isinstance(config, OptConfig)
        assert len(times) == 3


class TestMerging:
    """Merging partial datasets of a sharded sweep."""

    def _part(self, chip, value=100.0):
        ds = PerfDataset()
        ds.add(TestCase("a1", "g1", chip), BASELINE, [value] * 3)
        ds.add(TestCase("a1", "g1", chip), OptConfig(sg=True), [value / 2] * 3)
        return ds

    def test_update_disjoint(self):
        ds = self._part("C1")
        ds.update(self._part("C2", 200.0))
        assert ds.chips == ["C1", "C2"]
        assert ds.n_measurements == 4
        assert ds.times(TestCase("a1", "g1", "C2"), BASELINE) == (200.0,) * 3

    def test_update_identical_overlap_ok(self):
        ds = self._part("C1")
        ds.update(self._part("C1"))
        assert ds.n_measurements == 2

    def test_update_conflicting_overlap_raises(self):
        ds = self._part("C1")
        with pytest.raises(DatasetError):
            ds.update(self._part("C1", 999.0))

    def test_update_conflict_names_the_offending_cell(self):
        """The error must say *which* (test, config) conflicted."""
        ds = self._part("C1")
        with pytest.raises(DatasetError) as excinfo:
            ds.update(self._part("C1", 999.0))
        err = excinfo.value
        assert err.test == TestCase("a1", "g1", "C1")
        assert err.config_key == BASELINE.key()
        message = str(err)
        assert "a1/g1/C1" in message
        assert f"{BASELINE.key()!r}" in message
        assert "100.0" in message and "999.0" in message

    def test_merged_classmethod(self):
        merged = PerfDataset.merged(
            [self._part("C1"), self._part("C2", 200.0), self._part("C3", 300.0)]
        )
        assert merged.chips == ["C1", "C2", "C3"]
        assert merged.n_measurements == 6

    def test_equality_ignores_insertion_order(self):
        a = PerfDataset.merged([self._part("C1"), self._part("C2", 200.0)])
        b = PerfDataset.merged([self._part("C2", 200.0), self._part("C1")])
        assert a == b
        assert a.tests != b.tests  # order differs, table does not

    def test_equality_detects_differences(self, dataset):
        other = PerfDataset.merged([dataset])
        assert other == dataset
        other.add(TestCase("a1", "g1", "C1"), BASELINE, [1.0, 1.0, 1.0])
        assert other != dataset
        assert dataset != object()


class TestPersistence:
    def test_json_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "ds.json")
        dataset.save(path)
        loaded = PerfDataset.load(path)
        assert loaded.n_measurements == dataset.n_measurements
        test = TestCase("a2", "g1", "C2")
        assert loaded.times(test, OptConfig(sg=True)) == dataset.times(
            test, OptConfig(sg=True)
        )

    def test_gzip_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "ds.json.gz")
        dataset.save(path)
        loaded = PerfDataset.load(path)
        assert loaded.n_measurements == dataset.n_measurements

    def test_config_keys_survive_roundtrip(self, dataset, tmp_path):
        path = str(tmp_path / "ds.json")
        dataset.save(path)
        loaded = PerfDataset.load(path)
        assert {c.key() for c in loaded.configs} == {
            c.key() for c in dataset.configs
        }

    def test_save_is_atomic_no_temp_left_behind(self, dataset, tmp_path):
        path = str(tmp_path / "ds.json")
        dataset.save(path)
        dataset.save(path)  # overwrite in place
        assert os.listdir(tmp_path) == ["ds.json"]

    def test_legacy_uncheck_summed_payload_loads(self, dataset, tmp_path):
        """Files from before the checksum header still load."""
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as f:
            json.dump(dataset.to_dict(), f)
        assert PerfDataset.load(path) == dataset


class TestCorruptionDetection:
    """Truncated or tampered dataset files raise a clear DatasetError."""

    def _saved(self, dataset, tmp_path, name="ds.json"):
        path = str(tmp_path / name)
        dataset.save(path)
        return path

    def test_truncated_json_raises_with_path_and_reason(
        self, dataset, tmp_path
    ):
        path = self._saved(dataset, tmp_path)
        with open(path, "r+") as f:
            f.truncate(os.path.getsize(path) // 2)
        with pytest.raises(DatasetError) as excinfo:
            PerfDataset.load(path)
        assert path in str(excinfo.value)
        assert "truncated or invalid JSON" in str(excinfo.value)

    def test_truncated_gzip_raises(self, dataset, tmp_path):
        path = self._saved(dataset, tmp_path, "ds.json.gz")
        with open(path, "r+b") as f:
            f.truncate(os.path.getsize(path) // 2)
        with pytest.raises(DatasetError) as excinfo:
            PerfDataset.load(path)
        assert path in str(excinfo.value)

    def test_garbage_gzip_raises(self, dataset, tmp_path):
        path = str(tmp_path / "ds.json.gz")
        with open(path, "wb") as f:
            f.write(b"this is not gzip")
        with pytest.raises(DatasetError, match="bad gzip"):
            PerfDataset.load(path)

    def test_tampered_timing_fails_checksum(self, dataset, tmp_path):
        path = self._saved(dataset, tmp_path)
        with open(path) as f:
            payload = json.load(f)
        payload["measurements"][0]["times"][0] += 1.0
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(DatasetError, match="checksum mismatch"):
            PerfDataset.load(path)

    def test_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read"):
            PerfDataset.load(str(tmp_path / "nope.json"))

    def test_wrong_shape_payload_raises(self, tmp_path):
        path = str(tmp_path / "ds.json")
        with open(path, "w") as f:
            json.dump([1, 2, 3], f)
        with pytest.raises(DatasetError, match="measurements"):
            PerfDataset.load(path)

    def test_malformed_record_raises(self, tmp_path):
        path = str(tmp_path / "ds.json")
        with open(path, "w") as f:
            json.dump({"measurements": [{"app": "a"}]}, f)
        with pytest.raises(DatasetError, match="malformed measurement"):
            PerfDataset.load(path)

    def test_injected_corrupt_write_detected_on_load(self, dataset, tmp_path):
        """The corrupted-write fault class: save garbles, load rejects."""
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("corrupt", "ds.json")
        path = str(tmp_path / "ds.json")
        dataset.save(path, faults=plan)
        with pytest.raises(DatasetError) as excinfo:
            PerfDataset.load(path)
        assert path in str(excinfo.value)
        # With no fault armed the same save/load roundtrips cleanly.
        dataset.save(path, faults=plan)
        assert PerfDataset.load(path) == dataset

    def test_injected_corrupt_write_on_gzip(self, dataset, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("corrupt", "ds.json.gz")
        path = str(tmp_path / "ds.json.gz")
        dataset.save(path, faults=plan)
        with pytest.raises(DatasetError):
            PerfDataset.load(path)
