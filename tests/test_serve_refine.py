"""In-process tests for ``GET /v1/strategy?refine=1``.

The refine mode is the server half of the budgeted-autotuning loop:
live ``POST /v1/predict`` pricings accumulate in a bounded
:class:`~repro.serve.refine.ObservationStore`, and a strategy query
that would otherwise be served a degraded (fallen-back) answer may opt
into exploiting them.  The precedence contract under test:

* an exact, non-degraded index cell always wins (offline ground truth
  beats live samples) — the response is byte-identical to the
  non-refine path;
* a degraded answer with no live evidence falls back exactly as
  before, byte-identically;
* a degraded answer with live evidence for the precise cell is
  replaced by a ``"refined": true`` answer with provenance;
* the refine counters reconcile:
  ``serve.refine.requests == served + misses + exact``.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.errors import ServeError
from repro.obs import Recorder
from repro.serve import ObservationStore, StrategyServer, build_index
from repro.study.dataset import PerfDataset

from .test_serve_server import StubPredictor, http_request, run

GOLDEN_DATASET = "mini-dataset.json.gz"


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def index(golden_dataset):
    return build_index(golden_dataset)


def _strategy_target(chip, app, inp, refine=None):
    target = f"/v1/strategy?chip={chip}&app={app}&input={inp}"
    if refine is not None:
        target += f"&refine={refine}"
    return target


def _predict_body(chip, app, inp, config="baseline"):
    return json.dumps(
        {"chip": chip, "app": app, "input": inp, "config": config}
    ).encode()


class TestObservationStore:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ServeError):
            ObservationStore(0)

    def test_best_is_lowest_mean_median_tie_on_key(self):
        store = ObservationStore()
        store.record("c", "a", "i", "bbb", (30.0, 10.0, 20.0))  # median 20
        store.record("c", "a", "i", "aaa", (20.0,))
        assert store.best("c", "a", "i") == ("aaa", 20.0, 2)
        # Another observation moves bbb's mean below aaa's.
        store.record("c", "a", "i", "bbb", (4.0,))
        config, mean, n = store.best("c", "a", "i")
        assert config == "bbb" and mean == 12.0 and n == 3
        assert store.best("c", "a", "other") is None

    def test_eviction_is_lru_and_counted(self):
        store = ObservationStore(2)
        store.record("c1", "a", "i", "x", (1.0,))
        store.record("c2", "a", "i", "x", (1.0,))
        store.best("c1", "a", "i")  # refresh c1: c2 is now oldest
        store.record("c3", "a", "i", "x", (1.0,))
        assert store.best("c2", "a", "i") is None
        assert store.best("c1", "a", "i") is not None
        assert len(store) == 2
        stats = store.stats()
        assert stats == {
            "cells": 2, "capacity": 2, "recorded": 3, "evicted": 1,
        }

    def test_empty_times_are_ignored(self):
        store = ObservationStore()
        store.record("c", "a", "i", "x", ())
        assert len(store) == 0 and store.recorded == 0


class TestRefineEndpoint:
    def test_fresh_degraded_query_falls_back_byte_identically(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            try:
                t = _strategy_target("NOPE", "bfs-wl", "tiny-road")
                s1, _, raw_plain = await http_request(
                    server.port, "GET", t
                )
                s2, body, raw_refine = await http_request(
                    server.port, "GET", t + "&refine=1"
                )
            finally:
                await server.stop()
            return s1, s2, raw_plain, raw_refine, body

        s1, s2, raw_plain, raw_refine, body = run(go())
        assert s1 == s2 == 200
        assert raw_refine == raw_plain  # no evidence: identical bytes
        assert body["degraded"] and "refined" not in body

    def test_exact_cell_outranks_live_observations(self, index,
                                                   golden_dataset):
        """Offline ground truth wins: even with live observations for
        the cell, a non-degraded index answer is served unchanged."""
        t = golden_dataset.tests[0]

        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body(t.chip, t.app, t.graph),
                )
                target = _strategy_target(t.chip, t.app, t.graph)
                _, _, raw_plain = await http_request(
                    server.port, "GET", target
                )
                _, body, raw_refine = await http_request(
                    server.port, "GET", target + "&refine=1"
                )
            finally:
                await server.stop()
            return raw_plain, raw_refine, body

        raw_plain, raw_refine, body = run(go())
        assert raw_refine == raw_plain
        assert not body["degraded"] and "refined" not in body

    def test_degraded_cell_refines_from_predict_traffic(self, index):
        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body("NOPE", "bfs-wl", "tiny-road", "wg"),
                )
                target = _strategy_target(
                    "NOPE", "bfs-wl", "tiny-road", refine="1"
                )
                s, body, _ = await http_request(server.port, "GET", target)
                # The plain path is untouched by the refine store.
                _, plain, _ = await http_request(
                    server.port, "GET",
                    _strategy_target("NOPE", "bfs-wl", "tiny-road"),
                )
                _, health, _ = await http_request(
                    server.port, "GET", "/healthz"
                )
            finally:
                await server.stop()
            return s, body, plain, health

        s, body, plain, health = run(go())
        assert s == 200
        assert body["refined"] is True
        assert body["served_level"] == "refined"
        assert body["degraded"] is False
        assert body["config"] == "wg"
        assert body["observations"] == 1
        assert "live /v1/predict" in body["note"]
        assert "index fallback" in body["note"]
        assert body["query"] == {
            "chip": "NOPE", "app": "bfs-wl", "input": "tiny-road",
        }
        assert plain["degraded"] and "refined" not in plain
        assert health["refine_cells"] == 1

    def test_partial_coordinates_never_refine(self, index):
        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body("NOPE", "bfs-wl", "tiny-road"),
                )
                _, _, raw_plain = await http_request(
                    server.port, "GET", "/v1/strategy?chip=NOPE"
                )
                s, body, raw_refine = await http_request(
                    server.port, "GET", "/v1/strategy?chip=NOPE&refine=1"
                )
            finally:
                await server.stop()
            return s, body, raw_plain, raw_refine

        s, body, raw_plain, raw_refine = run(go())
        assert s == 200
        assert raw_refine == raw_plain
        assert "refined" not in body

    def test_refine_zero_and_bad_values(self, index):
        async def go():
            server = StrategyServer(index)
            await server.start()
            try:
                t = _strategy_target("NOPE", "bfs-wl", "tiny-road")
                _, _, raw_plain = await http_request(server.port, "GET", t)
                s0, _, raw_zero = await http_request(
                    server.port, "GET", t + "&refine=0"
                )
                s_bad, err, _ = await http_request(
                    server.port, "GET", t + "&refine=yes"
                )
            finally:
                await server.stop()
            return raw_plain, s0, raw_zero, s_bad, err

        raw_plain, s0, raw_zero, s_bad, err = run(go())
        assert s0 == 200 and raw_zero == raw_plain
        assert s_bad == 400
        assert "refine" in err["error"]

    def test_counters_reconcile(self, index, golden_dataset):
        t = golden_dataset.tests[0]

        async def go():
            rec = Recorder()
            server = StrategyServer(
                index, predictor=StubPredictor(), recorder=rec
            )
            await server.start()
            try:
                # miss (degraded, no evidence), exact, partial miss,
                # then a served refinement.
                miss = _strategy_target(
                    "NOPE", "bfs-wl", "tiny-road", refine="1"
                )
                await http_request(server.port, "GET", miss)
                await http_request(
                    server.port, "GET",
                    _strategy_target(t.chip, t.app, t.graph, refine="1"),
                )
                await http_request(
                    server.port, "GET", "/v1/strategy?app=bfs-wl&refine=1"
                )
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body("NOPE", "bfs-wl", "tiny-road"),
                )
                await http_request(server.port, "GET", miss)
                _, metrics, _ = await http_request(
                    server.port, "GET", "/metrics"
                )
            finally:
                await server.stop()
            return metrics

        metrics = run(go())
        c = metrics["counters"]
        assert c["serve.refine.requests"] == 4
        assert c["serve.refine.served"] == 1
        assert c["serve.refine.exact"] == 1
        assert c["serve.refine.misses"] == 2
        assert c["serve.refine.recorded"] == 1
        assert c["serve.refine.requests"] == (
            c["serve.refine.served"]
            + c["serve.refine.misses"]
            + c["serve.refine.exact"]
        )
        assert metrics["refine"] == {
            "cells": 1, "capacity": 256, "recorded": 1, "evicted": 0,
        }

    def test_refined_answers_are_never_cached(self, index):
        """A refined answer must reflect the store at request time:
        new predict traffic changes the next refined response even
        when the response cache would have served the old bytes."""
        async def go():
            server = StrategyServer(index, predictor=StubPredictor())
            await server.start()
            try:
                target = _strategy_target(
                    "NOPE", "bfs-wl", "tiny-road", refine="1"
                )
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body("NOPE", "bfs-wl", "tiny-road", "wg"),
                )
                _, first, _ = await http_request(server.port, "GET", target)
                await http_request(
                    server.port, "POST", "/v1/predict",
                    _predict_body("NOPE", "bfs-wl", "tiny-road", "wg"),
                )
                _, second, _ = await http_request(server.port, "GET", target)
            finally:
                await server.stop()
            return first, second

        first, second = run(go())
        assert first["observations"] == 1
        assert second["observations"] == 2


class TestRefineDegradedIndexPrecedence:
    """Satellite of the degraded-mode suite: a *holed* index (a chip
    dropped from the source dataset) serves degraded answers that
    refine=1 may override, while surviving cells stay authoritative."""

    def test_dropped_chip_refines_but_survivors_do_not(
        self, golden_dataset
    ):
        gone = golden_dataset.chips[0]
        holed = PerfDataset()
        for test, config, times in golden_dataset.iter_measurements():
            if test.chip == gone:
                continue
            holed.add(test, config, times)
        holed_index = build_index(holed)
        t = holed.tests[0]

        async def go():
            server = StrategyServer(
                holed_index, predictor=StubPredictor()
            )
            await server.start()
            try:
                for chip in (gone, t.chip):
                    await http_request(
                        server.port, "POST", "/v1/predict",
                        _predict_body(chip, t.app, t.graph),
                    )
                _, dropped, _ = await http_request(
                    server.port, "GET",
                    _strategy_target(gone, t.app, t.graph, refine="1"),
                )
                _, survivor, _ = await http_request(
                    server.port, "GET",
                    _strategy_target(t.chip, t.app, t.graph, refine="1"),
                )
            finally:
                await server.stop()
            return dropped, survivor

        dropped, survivor = run(go())
        assert dropped["refined"] is True
        assert dropped["served_level"] == "refined"
        assert survivor.get("refined") is None
        assert not survivor["degraded"]
