"""Tests for the Table V strategy functions."""

import pytest

from repro.compiler import BASELINE
from repro.core import Analysis, Strategy, build_strategies, oracle_assignment
from repro.core.strategies import STRATEGY_DIMS, STRATEGY_ORDER
from repro.errors import AnalysisError
from repro.study import TestCase

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, build_strategies(ds, Analysis(ds))


class TestConstruction:
    def test_all_ten_strategies(self, designed):
        _, strategies = designed
        assert set(strategies) == set(STRATEGY_ORDER)

    def test_baseline_maps_everything_to_baseline(self, designed):
        ds, strategies = designed
        for test in ds.tests:
            assert strategies["baseline"].config_for(test) == BASELINE

    def test_global_is_single_config(self, designed):
        _, strategies = designed
        assert len(strategies["global"].distinct_configs) == 1

    def test_partition_counts(self, designed):
        ds, strategies = designed
        assert len(strategies["chip"].assignment) == 2
        assert len(strategies["app"].assignment) == 2
        assert len(strategies["input"].assignment) == 2
        assert len(strategies["chip+app"].assignment) == 4
        assert len(strategies["chip+app+input"].assignment) == 8
        assert len(strategies["oracle"].assignment) == 8

    def test_dims_registry_consistent(self):
        assert set(STRATEGY_DIMS) == set(STRATEGY_ORDER) - {"baseline", "oracle"}


class TestAssignments:
    def test_chip_strategy_reflects_designed_effects(self, designed):
        _, strategies = designed
        chip = strategies["chip"]
        c1 = chip.config_for(TestCase("a1", "g1", "C1"))
        c2 = chip.config_for(TestCase("a1", "g1", "C2"))
        assert c1.has("fg8") and c1.has("sg")
        assert not c2.has("fg8") and c2.has("sg")

    def test_oracle_picks_best_config(self, designed):
        ds, strategies = designed
        for test in ds.tests:
            config = strategies["oracle"].config_for(test)
            best_median = ds.median(test, config)
            assert all(
                best_median <= ds.median(test, other) + 1e-9
                for other in ds.configs
            )

    def test_oracle_never_enables_pure_harm(self, designed):
        ds, strategies = designed
        for test in ds.tests:
            assert not strategies["oracle"].config_for(test).has("wg")

    def test_missing_partition_raises(self, designed):
        _, strategies = designed
        with pytest.raises(AnalysisError):
            strategies["chip"].config_for(TestCase("a1", "g1", "C9"))

    def test_oracle_assignment_standalone(self, designed):
        ds, _ = designed
        assignment = oracle_assignment(ds)
        assert len(assignment) == len(ds.tests)


class TestStrategyObject:
    def test_key_for_dim_order(self):
        s = Strategy("x", ("input", "chip"), {})
        key = s.key_for(TestCase("app", "graph", "chip"))
        assert key == ("graph", "chip")

    def test_distinct_configs_deduplicates(self, designed):
        _, strategies = designed
        chip = strategies["chip"]
        assert 1 <= len(chip.distinct_configs) <= 2
