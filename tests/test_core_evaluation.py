"""Tests for strategy evaluation (Figures 3 and 4) on designed data."""

import pytest

from repro.core import (
    Analysis,
    build_strategies,
    evaluate_strategies,
    optimisable_tests,
    strategy_outcomes,
    strategy_slowdown_vs_oracle,
)
from repro.core.strategies import STRATEGY_ORDER

from .synthetic import build_synthetic_dataset


@pytest.fixture(scope="module")
def designed():
    ds = build_synthetic_dataset()
    return ds, build_strategies(ds, Analysis(ds))


class TestOptimisableTests:
    def test_all_tests_optimisable_in_designed_data(self, designed):
        ds, strategies = designed
        # sg helps everywhere, so the oracle speeds up every test.
        assert len(optimisable_tests(ds, strategies["oracle"])) == len(ds.tests)

    def test_nothing_optimisable_when_opts_only_harm(self):
        ds = build_synthetic_dataset(effects=lambda o, t: 1.4)
        strategies = build_strategies(ds, Analysis(ds))
        assert optimisable_tests(ds, strategies["oracle"]) == []


class TestOutcomes:
    def test_baseline_all_no_change(self, designed):
        ds, strategies = designed
        kept = optimisable_tests(ds, strategies["oracle"])
        o = strategy_outcomes(ds, strategies["baseline"], kept)
        assert o.no_change == o.n_tests
        assert o.pct_no_change == 100.0

    def test_oracle_all_speedups(self, designed):
        ds, strategies = designed
        kept = optimisable_tests(ds, strategies["oracle"])
        o = strategy_outcomes(ds, strategies["oracle"], kept)
        assert o.speedups == o.n_tests

    def test_percentages_sum_to_hundred(self, designed):
        ds, strategies = designed
        kept = optimisable_tests(ds, strategies["oracle"])
        for name in STRATEGY_ORDER:
            o = strategy_outcomes(ds, strategies[name], kept)
            assert o.pct_speedup + o.pct_slowdown + o.pct_no_change == pytest.approx(
                100.0
            )


class TestSlowdownVsOracle:
    def test_oracle_is_exactly_one(self, designed):
        ds, strategies = designed
        assert strategy_slowdown_vs_oracle(
            ds, strategies["oracle"], strategies["oracle"]
        ) == pytest.approx(1.0)

    def test_every_strategy_at_least_oracle(self, designed):
        ds, strategies = designed
        oracle = strategies["oracle"]
        for name in STRATEGY_ORDER:
            v = strategy_slowdown_vs_oracle(ds, strategies[name], oracle)
            assert v >= 1.0 - 1e-6

    def test_baseline_is_worst(self, designed):
        ds, strategies = designed
        oracle = strategies["oracle"]
        values = {
            name: strategy_slowdown_vs_oracle(ds, strategies[name], oracle)
            for name in STRATEGY_ORDER
        }
        assert values["baseline"] == max(values.values())

    def test_chip_specialisation_recovers_chip_effect(self, designed):
        """fg8 is chip-conditional by design, so the chip strategy must
        strictly beat the global one."""
        ds, strategies = designed
        oracle = strategies["oracle"]
        chip = strategy_slowdown_vs_oracle(ds, strategies["chip"], oracle)
        glob = strategy_slowdown_vs_oracle(ds, strategies["global"], oracle)
        assert chip < glob


class TestEvaluateStrategies:
    def test_summary_covers_all_strategies(self, designed):
        ds, strategies = designed
        summary = evaluate_strategies(ds, strategies)
        assert set(summary) == set(STRATEGY_ORDER)
        for name, stats in summary.items():
            assert stats["slowdown_vs_oracle"] >= 1.0 - 1e-6
            assert 0 <= stats["pct_speedup"] <= 100
