"""Differential and golden tests for the search-evaluation harness.

The harness (:mod:`repro.core.search_eval`) scores every replay
against the dataset's exhaustive oracle.  These tests keep it honest
two ways:

* **differential** — on Hypothesis-generated random studies, every
  fraction the harness reports is recomputed from scratch with the
  stdlib only (``statistics.median`` + ``math``, no shared helpers),
  and the oracle is cross-checked against the dataset's own
  ``best_config``;
* **golden** — the ``budget`` experiment's table on the committed
  miniature dataset is pinned byte-for-byte
  (``tests/goldens/budget_curve.txt``; re-bless with
  ``--update-goldens``), and the acceptance criterion rides along:
  every structured strategy meets or beats random at equal budget,
  and the full budget recovers the oracle exactly on all 18 tests.
"""

from __future__ import annotations

import math
import os
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import enumerate_configs
from repro.core import (
    SEARCH_STRATEGIES,
    budget_fractions,
    oracle_best,
    partition_fractions,
    replay_search,
)
from repro.core.search_eval import DEFAULT_BUDGETS, _scoreable_tests
from repro.errors import SearchError
from repro.experiments import budget_curve
from repro.obs import Recorder, recording
from repro.study.dataset import PerfDataset, TestCase

GOLDEN_DATASET = "mini-dataset.json.gz"
GOLDEN_TABLE = "budget_curve.txt"

CHIPS = ("chipA", "chipB")
APPS = ("appX", "appY")
GRAPHS = ("g1", "g2")
CONFIGS = enumerate_configs()[:8]

STRATEGY_NAMES = sorted(SEARCH_STRATEGIES)


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@st.composite
def studies(draw) -> PerfDataset:
    """A random small study with holes; baseline always measured."""
    n_chips = draw(st.integers(1, 2))
    n_apps = draw(st.integers(1, 2))
    n_configs = draw(st.integers(2, len(CONFIGS)))
    ds = PerfDataset()
    for chip in CHIPS[:n_chips]:
        for app in APPS[:n_apps]:
            for graph in GRAPHS[:1]:
                test = TestCase(app=app, graph=graph, chip=chip)
                for config in CONFIGS[:n_configs]:
                    if not config.is_baseline and draw(st.booleans()):
                        continue
                    ms = draw(st.integers(1, 40))
                    ds.add(test, config, [float(ms)] * 3)
    return ds


def _reference_fraction(ds: PerfDataset, test, chosen) -> float:
    """Stdlib-only recomputation of a replay's fraction of oracle."""
    medians = {}
    for config in ds.configs:
        times = ds.times_or_none(test, config)
        if times is not None:
            medians[config.key()] = statistics.median(times)
    oracle = min(medians.values())
    deployed = medians.get(chosen, max(medians.values()))
    return oracle / deployed


@settings(max_examples=20, deadline=None)
@given(studies(), st.sampled_from(STRATEGY_NAMES), st.integers(1, 12))
def test_fraction_matches_stdlib_recomputation(ds, name, budget):
    for test in ds.tests:
        result = replay_search(ds, test, name, budget)
        assert result.fraction == pytest.approx(
            _reference_fraction(ds, test, result.chosen), rel=1e-12
        )
        assert 0.0 < result.fraction <= 1.0


@settings(max_examples=20, deadline=None)
@given(studies())
def test_oracle_matches_the_datasets_own_best_config(ds):
    """``oracle_best`` agrees with ``PerfDataset.best_config`` on the
    median (the key may differ only on exact ties, where the oracle
    canonically prefers the lexicographically smaller key)."""
    for test in ds.tests:
        oracle = oracle_best(ds, test)
        best_cfg = ds.best_config(test)
        assert oracle[1] == pytest.approx(
            ds.median(test, best_cfg), rel=1e-12
        )
        medians = {
            c.key(): statistics.median(ds.times_or_none(test, c))
            for c in ds.configs
            if ds.times_or_none(test, c) is not None
        }
        ties = sorted(k for k, m in medians.items() if m == oracle[1])
        assert oracle[0] == ties[0]


@settings(max_examples=10, deadline=None)
@given(studies(), st.integers(1, 8))
def test_budget_fractions_is_the_geomean_of_replays(ds, budget):
    """The aggregate table cell is exactly the geomean of the per-test
    replay fractions — recomputed here via ``math`` logs."""
    out = budget_fractions(
        ds, strategies=["random"], budgets=(budget,), trials=2
    )
    logs = []
    for test in _scoreable_tests(ds):
        for trial in range(2):
            r = replay_search(ds, test, "random", budget, trial=trial)
            logs.append(math.log(r.fraction))
    expected = math.exp(sum(logs) / len(logs))
    assert out["random"][budget] == pytest.approx(expected, rel=1e-12)


def test_counters_account_for_every_probe(golden_dataset):
    rec = Recorder()
    test = golden_dataset.tests[0]
    with recording(rec):
        result = replay_search(golden_dataset, test, "random", 8)
    assert rec.counter_value("search.replays") == 1
    assert rec.counter_value("search.evaluations") == result.evaluations
    assert rec.counter_value("search.holes") == 0


def test_partition_fractions_covers_every_chip(golden_dataset):
    per_chip = partition_fractions(
        golden_dataset, "random", budgets=(8,), dims=("chip",), trials=1
    )
    assert sorted(k for (k,) in per_chip) == sorted(golden_dataset.chips)
    for curve in per_chip.values():
        assert 0.0 < curve[8] <= 1.0
    with pytest.raises(SearchError):
        partition_fractions(golden_dataset, "random", dims=("nope",))


class TestCLI:
    @pytest.fixture(scope="class")
    def dataset_path(self, goldens_dir) -> str:
        return os.path.join(goldens_dir, GOLDEN_DATASET)

    def test_renders_curves_and_partitions(self, dataset_path, capsys):
        from repro.core.search_eval import main as search_main

        code = search_main(
            [dataset_path, "--budget", "8", "--budget", "16",
             "--trials", "1", "--by", "chip"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Budgeted autotuning" in out
        assert "B=8" in out and "B=16" in out
        for name in STRATEGY_NAMES:
            assert name in out
        assert "partition — strategy: random" in out

    def test_single_strategy_with_metrics(
        self, dataset_path, tmp_path, capsys
    ):
        from repro.core.search_eval import main as search_main
        from repro.obs.report import RunReport

        metrics = str(tmp_path / "report.json")
        code = search_main(
            [dataset_path, "--strategy", "random", "--budget", "8",
             "--trials", "1", "--by", "app", "--metrics", metrics]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "halving" not in out
        report = RunReport.load(metrics)
        counters = report.counters
        assert counters["search.replays"] > 0
        assert counters["search.evaluations"] > 0

    def test_rejects_bad_arguments(self, dataset_path, capsys):
        from repro.core.search_eval import main as search_main

        assert search_main([dataset_path, "--budget", "0"]) == 1
        assert "--budget" in capsys.readouterr().err
        assert search_main([dataset_path, "--trials", "0"]) == 1
        assert "--trials" in capsys.readouterr().err
        missing = os.path.join(os.path.dirname(dataset_path), "nope.json")
        assert search_main([missing]) == 1

    def test_dispatches_from_the_top_level(self, dataset_path, capsys):
        from repro.__main__ import main as repro_main

        code = repro_main(
            ["search", dataset_path, "--strategy", "random",
             "--budget", "8", "--trials", "1"]
        )
        assert code == 0
        assert "Budgeted autotuning" in capsys.readouterr().out


class TestGoldenBudgetCurve:
    def test_budget_table_matches_golden(
        self, golden_dataset, goldens_dir, update_goldens
    ):
        rendered = budget_curve.run(golden_dataset)
        assert rendered.strip()
        path = os.path.join(goldens_dir, GOLDEN_TABLE)
        if update_goldens:
            with open(path, "w", encoding="utf-8") as f:
                f.write(rendered + "\n")
        if not os.path.exists(path):
            pytest.fail(
                f"missing golden file {path}; run with --update-goldens "
                f"to create it"
            )
        with open(path, encoding="utf-8") as f:
            expected = f.read()
        assert rendered + "\n" == expected, (
            f"{GOLDEN_TABLE} drifted from its golden file; if the "
            f"change is intentional, re-bless with --update-goldens "
            f"and commit"
        )

    def test_structured_strategies_dominate_random(self, golden_dataset):
        """The PR's acceptance criterion: at every budget, each
        structured strategy's fraction-of-oracle meets or beats the
        random baseline's on the committed dataset."""
        results = budget_fractions(golden_dataset)
        for budget in DEFAULT_BUDGETS:
            baseline = results["random"][budget]
            for name in STRATEGY_NAMES:
                assert results[name][budget] >= baseline, (
                    f"{name} lost to random at B={budget}: "
                    f"{results[name][budget]:.4f} < {baseline:.4f}"
                )

    def test_full_budget_equals_exhaustive_answer(self, golden_dataset):
        """B=96 is the exhaustive sweep: every strategy returns the
        Algorithm 1 oracle byte-for-byte on every test."""
        for test in golden_dataset.tests:
            oracle = oracle_best(golden_dataset, test)
            for name in STRATEGY_NAMES:
                result = replay_search(golden_dataset, test, name, 96)
                assert result.chosen == oracle[0]
                assert result.chosen_median == oracle[1]
                assert result.fraction == 1.0
