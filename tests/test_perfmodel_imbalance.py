"""Tests for the load-imbalance model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chips import get_chip
from repro.compiler.plan import KernelPlan
from repro.dsl import relax_kernel
from repro.perfmodel import (
    bucket_degree,
    expected_max_degree,
    imbalance_factor,
    partition_work,
)
from repro.perfmodel.cost import effective_imbalance


def hist_strategy():
    return st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=14)


def make_plan(wg=False, sg=False, fg=None, sg_size=32, wg_size=128):
    plan = KernelPlan(
        kernel=relax_kernel("k", "x"), wg_size=wg_size, sg_size=sg_size
    )
    return plan.with_(
        wg_scheme=wg,
        sg_scheme=sg,
        fg_edges=fg,
        wg_threshold=wg_size if wg else 0,
        sg_threshold=sg_size if sg else 0,
    )


class TestExpectedMax:
    def test_single_bucket_equals_its_degree(self):
        hist = (0, 0, 5)  # five nodes of degree ~6
        assert expected_max_degree(hist, 8) == pytest.approx(bucket_degree(2))

    def test_group_of_one_is_mean(self):
        hist = (4, 0, 4)
        mean = (4 * bucket_degree(0) + 4 * bucket_degree(2)) / 8
        assert expected_max_degree(hist, 1) == pytest.approx(mean)

    def test_monotone_in_group_size(self):
        hist = (10, 5, 3, 1)
        values = [expected_max_degree(hist, s) for s in (1, 2, 4, 8, 16, 64)]
        assert values == sorted(values)

    def test_converges_to_max_bucket(self):
        hist = (100, 0, 0, 0, 1)
        assert expected_max_degree(hist, 10_000) == pytest.approx(
            bucket_degree(4), rel=0.01
        )

    def test_empty_hist(self):
        assert expected_max_degree((), 32) == 0.0


class TestImbalanceFactor:
    def test_uniform_degrees_balanced(self):
        assert imbalance_factor((0, 0, 0, 20), 32) == pytest.approx(1.0)

    def test_skew_increases_factor(self):
        skewed = imbalance_factor((50, 0, 0, 0, 0, 0, 2), 32)
        mild = imbalance_factor((50, 2), 32)
        assert skewed > mild > 1.0

    def test_group_one_is_one(self):
        assert imbalance_factor((5, 5, 5), 1) == 1.0

    @given(hist_strategy(), st.integers(min_value=1, max_value=128))
    def test_at_least_one(self, hist, group):
        assert imbalance_factor(tuple(hist), group) >= 1.0

    def test_effective_imbalance_softens_and_caps(self):
        assert effective_imbalance(1.0) == 1.0
        assert 1.0 < effective_imbalance(2.0) < 2.0
        assert effective_imbalance(1000.0) == 3.5  # the cap


class TestPartitionWork:
    HIST = (10, 10, 0, 0, 0, 4, 0, 2, 1)  # degrees ~1.5,3,48,192,384

    def test_no_schemes_all_serial(self):
        work = partition_work(self.HIST, make_plan())
        assert work.sg_edges == work.wg_edges == work.fg_edges == 0
        assert work.serial_edges == pytest.approx(work.total_edges)

    def test_wg_takes_heavy_nodes(self):
        work = partition_work(self.HIST, make_plan(wg=True))
        assert work.n_wg_nodes == 3  # degree >= 128: buckets 7 and 8
        # Lane waste makes cooperative edges >= raw edges.
        raw = 2 * bucket_degree(7) + 1 * bucket_degree(8)
        assert work.wg_edges >= raw

    def test_sg_takes_middle_band(self):
        work = partition_work(self.HIST, make_plan(wg=True, sg=True))
        assert work.n_sg_nodes == 4  # degree ~48 bucket
        assert work.n_wg_nodes == 3

    def test_sg_trivial_subgroup_is_noop(self):
        work = partition_work(self.HIST, make_plan(sg=True, sg_size=1))
        assert work.sg_edges == 0
        assert work.serial_edges == pytest.approx(work.total_edges)

    def test_fg_takes_remainder(self):
        work = partition_work(self.HIST, make_plan(wg=True, sg=True, fg=8))
        assert work.serial_edges == 0
        assert work.fg_edges == pytest.approx(
            10 * bucket_degree(0) + 10 * bucket_degree(1)
        )

    def test_residual_histogram_matches_serial(self):
        work = partition_work(self.HIST, make_plan(wg=True))
        assert sum(work.serial_hist) == 24  # all but the 3 heavy nodes

    @given(hist_strategy())
    def test_every_edge_assigned_exactly_once(self, hist):
        """Scheme partitioning conserves edges (up to lane waste)."""
        hist = tuple(hist)
        plan = make_plan(wg=True, sg=True, fg=8)
        work = partition_work(hist, plan)
        raw_edges = sum(c * bucket_degree(b) for b, c in enumerate(hist))
        assigned_floor = (
            work.serial_edges + work.sg_edges / 2 + work.wg_edges / 2 + work.fg_edges
        )
        assert work.total_edges >= raw_edges - 1e-9
        assert assigned_floor <= raw_edges + 1e-9 or raw_edges == 0
