"""Tests for CC, MIS and MST applications."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import get_application, kruskal_weight, mis_priorities
from repro.graphs import CSRGraph, uniform_random_graph


class TestCC:
    @pytest.mark.parametrize("name", ["cc-topo", "cc-wl"])
    def test_two_components(self, name, disconnected_graph):
        app = get_application(name)
        res = app.run(disconnected_graph)
        labels = app.extract_result(res.state, disconnected_graph)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] != labels[0]
        assert labels[4] not in (labels[0], labels[3])

    @pytest.mark.parametrize("name", ["cc-topo", "cc-wl"])
    def test_direction_ignored(self, name):
        # 0 -> 1, 2 -> 1: weakly connected as one component.
        g = CSRGraph.from_edges(3, [(0, 1), (2, 1)])
        app = get_application(name)
        labels = app.extract_result(app.run(g).state, g)
        assert labels[0] == labels[1] == labels[2]

    def test_variants_agree(self, small_uniform):
        a = get_application("cc-topo")
        b = get_application("cc-wl")
        la = a.extract_result(a.run(small_uniform).state, small_uniform)
        lb = b.extract_result(b.run(small_uniform).state, small_uniform)
        assert np.array_equal(la, lb)

    def test_labels_are_min_member(self, triangle_pair):
        app = get_application("cc-wl")
        labels = app.extract_result(app.run(triangle_pair).state, triangle_pair)
        assert labels.tolist() == [0, 0, 0, 3, 3, 3]

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_scipy_on_random(self, seed):
        g = uniform_random_graph(80, 1.5, seed=seed % 991)
        assert get_application("cc-wl").validate(g)


class TestMIS:
    @pytest.mark.parametrize("name", ["mis-topo", "mis-wl"])
    def test_is_independent_and_maximal(self, name, small_uniform):
        app = get_application(name)
        res = app.run(small_uniform)
        in_set = app.extract_result(res.state, small_uniform).astype(bool)
        und = small_uniform.symmetrized()
        # Independence: no edge inside the set.
        for u in np.flatnonzero(in_set):
            assert not in_set[und.neighbors(u)].any()
        # Maximality: every excluded node has a neighbour in the set.
        for v in np.flatnonzero(~in_set):
            assert in_set[und.neighbors(v)].any()

    def test_variants_agree(self, small_uniform):
        a = get_application("mis-topo")
        b = get_application("mis-wl")
        sa = a.extract_result(a.run(small_uniform).state, small_uniform)
        sb = b.extract_result(b.run(small_uniform).state, small_uniform)
        assert np.array_equal(sa, sb)

    def test_isolated_nodes_always_in_set(self, disconnected_graph):
        app = get_application("mis-wl")
        in_set = app.extract_result(
            app.run(disconnected_graph).state, disconnected_graph
        )
        assert in_set[3] == 1 and in_set[4] == 1

    def test_priorities_deterministic(self, small_uniform):
        assert np.array_equal(
            mis_priorities(small_uniform), mis_priorities(small_uniform)
        )

    def test_converges_in_few_rounds(self, small_rmat):
        trace = get_application("mis-wl").run(small_rmat).trace
        # Priority MIS converges in O(log n) rounds w.h.p.
        assert trace.n_fixpoint_iterations < 30


class TestMST:
    def test_line_forest_weight(self, line_graph):
        app = get_application("mst-boruvka")
        res = app.run(line_graph)
        assert app.extract_result(res.state, line_graph)[0] == 4.0

    def test_cycle_drops_heaviest(self):
        g = CSRGraph.from_edges(
            3, [(0, 1), (1, 2), (2, 0)], [1.0, 2.0, 5.0]
        )
        app = get_application("mst-boruvka")
        assert app.extract_result(app.run(g).state, g)[0] == 3.0

    def test_forest_on_disconnected(self, disconnected_graph):
        app = get_application("mst-boruvka")
        res = app.run(disconnected_graph)
        # Triangle with weights 1,2,3 -> MST weight 3; isolated nodes add 0.
        assert app.extract_result(res.state, disconnected_graph)[0] == 3.0

    def test_equal_weights_still_spanning(self):
        g = CSRGraph.from_edges(
            4, [(0, 1), (1, 2), (2, 3), (3, 0)], [1.0, 1.0, 1.0, 1.0]
        )
        app = get_application("mst-boruvka")
        assert app.extract_result(app.run(g).state, g)[0] == 3.0

    def test_kruskal_oracle_on_known_graph(self):
        g = CSRGraph.from_edges(
            4, [(0, 1), (0, 2), (1, 2), (2, 3)], [4.0, 1.0, 2.0, 7.0]
        ).symmetrized()
        assert kruskal_weight(g) == 10.0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_kruskal_on_random(self, seed):
        g = uniform_random_graph(40, 3.0, seed=seed % 983)
        assert get_application("mst-boruvka").validate(g)

    def test_component_count_decreases_per_round(self, small_road):
        """Borůvka at least halves components per round: few rounds."""
        trace = get_application("mst-boruvka").run(small_road).trace
        assert trace.n_fixpoint_iterations <= 14
