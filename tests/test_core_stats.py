"""Tests for the from-scratch statistics, validated against SciPy."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    cl_effect_size,
    cl_from_u,
    mann_whitney_u,
    median,
    rankdata,
    speedup_ratio,
    t_cdf,
    t_ppf,
    tie_groups,
)
from repro.core.stats.tdist import betainc_regularized
from repro.errors import InsufficientDataError

floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRanks:
    def test_simple_ranks(self):
        assert rankdata([30, 10, 20]).tolist() == [3, 1, 2]

    def test_ties_get_average_rank(self):
        assert rankdata([1, 2, 2, 3]).tolist() == [1, 2.5, 2.5, 4]

    def test_all_tied(self):
        assert rankdata([5, 5, 5]).tolist() == [2, 2, 2]

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_matches_scipy(self, values):
        ours = rankdata(values)
        theirs = scipy.stats.rankdata(values)
        assert np.allclose(ours, theirs)

    def test_tie_groups(self):
        assert tie_groups([1, 1, 2, 3, 3, 3]) == (2, 3)
        assert tie_groups([1, 2, 3]) == ()


class TestTDistribution:
    @pytest.mark.parametrize("df", [1, 2, 3, 5, 10, 30, 100])
    @pytest.mark.parametrize("t", [-3.0, -1.0, 0.0, 0.5, 2.0, 4.0])
    def test_cdf_matches_scipy(self, df, t):
        assert t_cdf(t, df) == pytest.approx(scipy.stats.t.cdf(t, df), abs=1e-9)

    @pytest.mark.parametrize("df", [2, 4, 10, 50])
    @pytest.mark.parametrize("q", [0.025, 0.1, 0.5, 0.9, 0.975])
    def test_ppf_matches_scipy(self, df, q):
        assert t_ppf(q, df) == pytest.approx(
            scipy.stats.t.ppf(q, df), rel=1e-6, abs=1e-7
        )

    def test_ppf_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            t_ppf(0.0, 3)
        with pytest.raises(ValueError):
            t_ppf(1.5, 3)
        with pytest.raises(ValueError):
            t_cdf(0.0, 0)

    @given(
        st.floats(min_value=0.5, max_value=20),
        st.floats(min_value=0.5, max_value=20),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60)
    def test_betainc_matches_scipy(self, a, b, x):
        assert betainc_regularized(a, b, x) == pytest.approx(
            scipy.special.betainc(a, b, x), abs=1e-8
        )


class TestMWU:
    def test_matches_scipy_no_ties(self, rng):
        a = rng.normal(0.9, 0.1, size=40)
        b = rng.normal(1.0, 0.1, size=35)
        ours = mann_whitney_u(a, b)
        theirs = scipy.stats.mannwhitneyu(a, b, alternative="two-sided")
        assert ours.u1 == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_matches_scipy_with_ties(self):
        a = [1.0, 1.0, 2.0, 3.0, 3.0, 4.0, 4.0, 5.0]
        b = [1.0, 2.0, 2.0, 2.0, 3.0, 5.0, 5.0, 6.0]
        ours = mann_whitney_u(a, b)
        theirs = scipy.stats.mannwhitneyu(a, b, alternative="two-sided")
        assert ours.u1 == pytest.approx(theirs.statistic)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-6)

    def test_identical_samples_not_significant(self):
        result = mann_whitney_u([1.0] * 10, [1.0] * 10)
        assert result.p_value == 1.0
        assert not result.reject_null()

    def test_clearly_shifted_samples_significant(self):
        result = mann_whitney_u([0.5] * 10 + [0.6] * 10, [1.0] * 20)
        assert result.reject_null(0.05)

    def test_u_statistics_sum_invariant(self, rng):
        a = rng.random(15)
        b = rng.random(12)
        res = mann_whitney_u(a, b)
        assert res.u1 + res.u2 == pytest.approx(15 * 12)

    def test_insufficient_data_raises(self):
        with pytest.raises(InsufficientDataError):
            mann_whitney_u([1.0, 2.0], [1.0, 2.0, 3.0])
        with pytest.raises(InsufficientDataError):
            mann_whitney_u([], [])

    @given(
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=4, max_size=30),
        st.lists(st.floats(min_value=0.1, max_value=10), min_size=4, max_size=30),
    )
    @settings(max_examples=40)
    def test_p_value_in_range_and_symmetric(self, a, b):
        r_ab = mann_whitney_u(a, b)
        r_ba = mann_whitney_u(b, a)
        assert 0.0 <= r_ab.p_value <= 1.0
        assert r_ab.p_value == pytest.approx(r_ba.p_value, abs=1e-12)
        assert r_ab.u1 == pytest.approx(r_ba.u2)


class TestEffectSize:
    def test_all_smaller(self):
        assert cl_effect_size([0.5, 0.6], [1.0, 1.0]) == 1.0

    def test_all_larger(self):
        assert cl_effect_size([1.5, 1.6], [1.0, 1.0]) == 0.0

    def test_ties_count_half(self):
        assert cl_effect_size([1.0], [1.0]) == 0.5

    def test_empty_is_half(self):
        assert cl_effect_size([], [1.0]) == 0.5

    def test_consistent_with_u(self, rng):
        a = rng.random(20).tolist()
        b = rng.random(25).tolist()
        res = mann_whitney_u(a, b)
        assert cl_from_u(res.u1, res.n1, res.n2) == pytest.approx(
            cl_effect_size(a, b)
        )


class TestSummary:
    def test_median(self):
        assert median([3.0, 1.0, 2.0]) == 2.0
        with pytest.raises(ValueError):
            median([])

    def test_speedup_ratio(self):
        assert speedup_ratio([10.0, 10.0], [5.0, 5.0]) == 2.0
