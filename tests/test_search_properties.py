"""Property-based hardening of the budgeted search strategies.

Hypothesis generates small *random studies* — random grid shapes,
random per-cell timings, random holes — and checks the invariants the
budgeted-autotuning layer rests on:

* a search never spends past its budget, whatever the strategy, the
  budget or the hole pattern (the hard cap of
  :class:`~repro.core.search.SearchStrategy.propose`);
* the best-so-far trajectory along the observation history is monotone
  non-increasing (full-fidelity medians only — screening rungs may
  promote but never recommend);
* ``budget >= len(pool)`` recovers the exhaustive oracle *exactly* —
  config key and median, bit for bit — for every strategy;
* replays are bit-deterministic under a fixed seed and invariant under
  dict-order shuffling of the dataset's insertion order (all internal
  orderings are canonical), mirroring ``test_portfolio_properties``.

Integer-valued timings keep medians exact across orderings.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler import enumerate_configs
from repro.core import (
    SEARCH_STRATEGIES,
    make_strategy,
    oracle_best,
    replay_search,
)
from repro.core.search import _EPS, lattice_neighbours
from repro.errors import SearchError
from repro.study.dataset import PerfDataset, TestCase

CHIPS = ("chipA", "chipB")
APPS = ("appX", "appY")
GRAPHS = ("g1", "g2")
CONFIGS = enumerate_configs()[:8]  # baseline + 7 single/double-opt configs

STRATEGY_NAMES = sorted(SEARCH_STRATEGIES)


@st.composite
def studies(draw) -> PerfDataset:
    """A random small study: grid shape, timings and holes all drawn.

    The baseline configuration is always measured (so every test stays
    scoreable); every other cell is independently droppable, which
    exercises the hole-costs-nothing path of the replay loop.
    """
    n_chips = draw(st.integers(1, 2))
    n_apps = draw(st.integers(1, 2))
    n_graphs = draw(st.integers(1, 2))
    n_configs = draw(st.integers(2, len(CONFIGS)))
    ds = PerfDataset()
    for chip in CHIPS[:n_chips]:
        for app in APPS[:n_apps]:
            for graph in GRAPHS[:n_graphs]:
                test = TestCase(app=app, graph=graph, chip=chip)
                for config in CONFIGS[:n_configs]:
                    if not config.is_baseline and draw(st.booleans()):
                        continue  # a hole in the grid
                    ms = draw(st.integers(1, 40))
                    ds.add(test, config, [float(ms)] * 3)
    return ds


def _drive(ds, test, name, budget, seed=0):
    """Run one strategy to completion against the dataset, like
    ``replay_search`` but returning the live searcher for inspection."""
    searcher = make_strategy(
        name,
        ds.configs,
        budget=budget,
        rng=random.Random(seed),
        repetitions=3,
    )
    while (prop := searcher.propose()) is not None:
        times = ds.times_or_none(test, prop.config)
        if times is not None and prop.repetitions is not None:
            times = times[: prop.repetitions]
        searcher.observe(prop, times)
    return searcher


@settings(max_examples=20, deadline=None)
@given(studies(), st.sampled_from(STRATEGY_NAMES), st.integers(1, 12))
def test_spent_never_exceeds_budget(ds, name, budget):
    for test in ds.tests:
        searcher = _drive(ds, test, name, budget)
        assert searcher.spent <= budget + _EPS
        # The replay harness reports the same accounting.
        result = replay_search(ds, test, name, budget)
        assert result.spent <= budget + _EPS
        # Each config is observed at most once per fidelity rung
        # (1 rep, then full) — never more.
        assert result.evaluations <= 2 * len(ds.configs)


@settings(max_examples=20, deadline=None)
@given(studies(), st.sampled_from(STRATEGY_NAMES), st.integers(1, 12))
def test_best_so_far_monotone_non_increasing(ds, name, budget):
    for test in ds.tests:
        searcher = _drive(ds, test, name, budget)
        trajectory = [
            obs.best_median
            for obs in searcher.history
            if obs.best_median is not None
        ]
        assert trajectory == sorted(trajectory, reverse=True)
        # Once set, the best-so-far never resets to None.
        seen = [obs.best_median is not None for obs in searcher.history]
        assert seen == sorted(seen)
        # best() agrees with the last trajectory point.
        if trajectory:
            assert searcher.best()[1] == trajectory[-1]
        else:
            assert searcher.best() is None


@settings(max_examples=20, deadline=None)
@given(studies(), st.sampled_from(STRATEGY_NAMES))
def test_full_budget_recovers_the_oracle_exactly(ds, name):
    for test in ds.tests:
        result = replay_search(ds, test, name, len(ds.configs))
        oracle = oracle_best(ds, test)
        assert oracle is not None  # baseline is always measured
        assert result.chosen == oracle[0]
        assert result.chosen_median == oracle[1]
        assert result.fraction == 1.0


@settings(max_examples=20, deadline=None)
@given(
    studies(),
    st.sampled_from(STRATEGY_NAMES),
    st.integers(1, 12),
    st.randoms(use_true_random=False),
)
def test_replay_deterministic_under_insertion_order_shuffle(
    ds, name, budget, rnd
):
    """Re-inserting the measurements in a shuffled order must not move
    a single replay field: pools sort canonically, ties break on
    ``(median, key)``, and all randomness is injected."""
    cells = list(ds.iter_measurements())
    rnd.shuffle(cells)
    shuffled = PerfDataset()
    for test, config, times in cells:
        shuffled.add(test, config, times)
    for test in ds.tests:
        baseline = replay_search(ds, test, name, budget, seed=7, trial=2)
        again = replay_search(shuffled, test, name, budget, seed=7, trial=2)
        assert again.to_dict() == baseline.to_dict()


@settings(max_examples=10, deadline=None)
@given(studies(), st.integers(1, 12), st.integers(0, 3))
def test_distinct_seeds_are_independent_replays(ds, budget, seed):
    """The same (test, budget) under different seeds reruns the whole
    propose/observe loop from scratch — same oracle, same accounting
    invariants, possibly different draws."""
    test = ds.tests[0]
    a = replay_search(ds, test, "random", budget, seed=seed)
    b = replay_search(ds, test, "random", budget, seed=seed + 1)
    assert a.oracle == b.oracle
    assert a.spent <= budget + _EPS and b.spent <= budget + _EPS


def test_lattice_neighbours_are_single_flips():
    for config in enumerate_configs():
        mine = config.enabled_names()
        neighbours = lattice_neighbours(config)
        assert len({n.key() for n in neighbours}) == len(neighbours)
        for n in neighbours:
            assert len(mine ^ n.enabled_names()) == 1
            assert not ({"fg", "fg8"} <= n.enabled_names())


def test_protocol_misuse_raises():
    rng = random.Random(0)
    searcher = make_strategy("random", CONFIGS, budget=4, rng=rng)
    prop = searcher.propose()
    with pytest.raises(SearchError):
        searcher.propose()  # must observe first
    searcher.observe(prop, [1.0, 2.0, 3.0])
    with pytest.raises(SearchError):
        searcher.observe(prop, [1.0, 2.0, 3.0])  # nothing pending
    with pytest.raises(SearchError):
        make_strategy("random", CONFIGS, budget=0, rng=rng)
    with pytest.raises(SearchError):
        make_strategy("nope", CONFIGS, budget=4, rng=rng)
    with pytest.raises(SearchError):
        make_strategy("random", CONFIGS, budget=4, rng=42)  # not a Random
