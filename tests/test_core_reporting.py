"""Tests for the text renderers."""

from repro.core.reporting import render_bar_series, render_heatmap, render_table


class TestRenderTable:
    def test_alignment_and_headers(self):
        out = render_table(["A", "Long header"], [[1, 2.5], ["xx", 3.0]])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "Long header" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert "2.50" in out  # floats formatted to 2 dp

    def test_title(self):
        out = render_table(["X"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        out = render_table(["A", "B"], [])
        assert len(out.splitlines()) == 2

    def test_wide_cell_expands_column(self):
        out = render_table(["A"], [["very-long-cell-value"]])
        header, rule, row = out.splitlines()
        assert len(rule) >= len("very-long-cell-value")


class TestRenderHeatmap:
    def test_grid_structure(self):
        values = {("r1", "c1"): 1.0, ("r1", "c2"): 2.0, ("r2", "c1"): 3.0}
        out = render_heatmap(["r1", "r2"], ["c1", "c2"], values, corner="x")
        assert "x" in out.splitlines()[0]
        assert "1.00" in out and "2.00" in out and "3.00" in out
        assert "nan" in out  # missing (r2, c2)


class TestRenderBarSeries:
    def test_bars_proportional(self):
        out = render_bar_series(
            ["a", "b"], {"series": [1.0, 2.0]}, width=10
        )
        lines = [l for l in out.splitlines() if "#" in l]
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_handles_zero_series(self):
        out = render_bar_series(["a"], {"s": [0.0]})
        assert "0.00" in out
