"""Unit tests for the recorder layer: spans, metrics, drain/merge."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import NULL_RECORDER, NullRecorder, Recorder


class FakeClock:
    """A deterministic clock: each read advances by ``step`` seconds."""

    def __init__(self, start: float = 100.0, step: float = 0.25) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


# -- counters / gauges / histograms ------------------------------------------


def test_counters_accumulate():
    rec = Recorder()
    rec.count("a")
    rec.count("a", 4)
    rec.count("b", 0)
    assert rec.counter_value("a") == 5
    assert rec.counter_value("b") == 0
    assert rec.counter_value("missing") == 0


def test_gauges_last_value_wins():
    rec = Recorder()
    rec.gauge("g", 1.0)
    rec.gauge("g", 7.5)
    assert rec.gauges["g"] == 7.5


def test_histograms_track_count_sum_min_max():
    rec = Recorder()
    for v in (3.0, 1.0, 2.0):
        rec.observe("h", v)
    assert rec.histograms["h"] == [3, 6.0, 1.0, 3.0]


# -- spans -------------------------------------------------------------------


def test_spans_time_with_injected_clock():
    clock = FakeClock(start=10.0, step=1.0)
    rec = Recorder(clock=clock)
    with rec.span("outer", kind="test") as sp:
        sp.set("late", 42)
    (span,) = rec.spans
    assert span.name == "outer"
    assert span.start_s == 10.0
    assert span.duration_s == 1.0
    assert span.attrs == {"kind": "test", "late": 42}


def test_spans_nest_with_depth():
    rec = Recorder(clock=FakeClock())
    with rec.span("parent"):
        with rec.span("child"):
            pass
        with rec.span("sibling"):
            pass
    names = [(s.name, s.depth) for s in rec.spans]
    assert names == [("parent", 0), ("child", 1), ("sibling", 1)]


def test_span_closes_on_exception():
    rec = Recorder(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with rec.span("doomed"):
            raise RuntimeError("boom")
    assert rec.spans[0].duration_s is not None
    assert not rec._stack


# -- drain / merge -----------------------------------------------------------


def test_drain_resets_and_merge_restores():
    clock = FakeClock()
    worker = Recorder(clock=clock)
    worker.count("shards", 3)
    worker.observe("lat", 2.0)
    worker.gauge("g", 1.0)
    with worker.span("work"):
        pass
    delta = worker.drain()
    assert worker.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }

    parent = Recorder(clock=clock)
    parent.count("shards", 1)
    parent.observe("lat", 4.0)
    parent.merge(delta)
    assert parent.counter_value("shards") == 4
    assert parent.histograms["lat"] == [2, 6.0, 2.0, 4.0]
    assert parent.gauges["g"] == 1.0
    assert [s.name for s in parent.spans] == ["work"]


def test_merge_is_additive_and_order_independent_for_counters():
    deltas = []
    for n in (1, 2, 3):
        w = Recorder()
        w.count("c", n)
        deltas.append(w.drain())
    fwd, rev = Recorder(), Recorder()
    for d in deltas:
        fwd.merge(d)
    for d in reversed(deltas):
        rev.merge(d)
    assert fwd.counters == rev.counters == {"c": 6}


# -- the null recorder -------------------------------------------------------


def test_null_recorder_is_inert():
    rec = NullRecorder()
    rec.count("x", 5)
    rec.gauge("g", 1.0)
    rec.observe("h", 2.0)
    with rec.span("s", a=1) as sp:
        sp.set("b", 2)
    rec.merge({"counters": {"x": 1}})
    assert rec.counter_value("x") == 0
    assert rec.snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "spans": [],
    }
    assert not rec.enabled


def test_null_recorder_span_is_shared():
    # The zero-overhead contract: no allocation per disabled span.
    assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")


# -- the process-wide current recorder ---------------------------------------


def test_recording_scopes_the_current_recorder():
    assert obs.get_recorder() is NULL_RECORDER
    rec = Recorder()
    with obs.recording(rec) as active:
        assert active is rec
        assert obs.get_recorder() is rec
        obs.count("scoped")
    assert obs.get_recorder() is NULL_RECORDER
    assert rec.counter_value("scoped") == 1
    obs.count("unscoped")  # swallowed by the null recorder
    assert rec.counter_value("unscoped") == 0


def test_set_recorder_none_restores_null():
    rec = Recorder()
    obs.set_recorder(rec)
    try:
        assert obs.get_recorder() is rec
    finally:
        obs.set_recorder(None)
    assert obs.get_recorder() is NULL_RECORDER
