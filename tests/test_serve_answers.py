"""Tests for ISSUE 6's pre-serialized zero-encode answers table.

The contract has three legs: (1) the table covers every lattice point
the index can enumerate, (2) each pre-serialized body is byte-identical
to what the PR 5 server computed per request (pinned by the
``strategy-responses.json`` golden, captured with the unmodified PR 5
code), and (3) artifacts written *before* the table existed — the
committed ``strategy-index-pr5.json`` — still load and serve through
the encode-on-miss path.
"""

from __future__ import annotations

import asyncio
import json
import os

import pytest

from repro.errors import StrategyIndexError
from repro.obs import Recorder
from repro.serve import (
    StrategyIndex,
    StrategyServer,
    build_index,
    render_answer,
)
from repro.study.dataset import PerfDataset

GOLDEN_DATASET = "mini-dataset.json.gz"
GOLDEN_RESPONSES = "strategy-responses.json"
GOLDEN_PR5_INDEX = "strategy-index-pr5.json"


@pytest.fixture(scope="module")
def golden_dataset(goldens_dir) -> PerfDataset:
    return PerfDataset.load(os.path.join(goldens_dir, GOLDEN_DATASET))


@pytest.fixture(scope="module")
def index(golden_dataset) -> StrategyIndex:
    return build_index(golden_dataset)


@pytest.fixture(scope="module")
def golden_responses(goldens_dir) -> dict:
    with open(os.path.join(goldens_dir, GOLDEN_RESPONSES)) as f:
        return json.load(f)


def run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def http_get(port: int, target: str):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body


class TestCompileAnswers:
    def test_table_covers_the_full_coordinate_lattice(self, index, golden_dataset):
        n_chips = len(golden_dataset.chips) + 1  # +1: dimension unnamed
        n_apps = len(golden_dataset.apps) + 1
        n_inputs = len(golden_dataset.graphs) + 1
        assert index.n_answers == n_chips * n_apps * n_inputs
        assert index.answer((None, None, None)) is not None
        for chip in golden_dataset.chips:
            for app in golden_dataset.apps:
                for inp in golden_dataset.graphs:
                    assert index.answer((chip, app, inp)) is not None

    def test_precompiled_bodies_match_render_answer(self, index):
        for (chip, app, inp), (body, degraded) in index.answers.items():
            rendered, rendered_degraded = render_answer(
                index, chip=chip, app=app, input=inp
            )
            assert body == rendered
            assert degraded == rendered_degraded

    def test_bodies_byte_identical_to_pr5_responses(
        self, index, golden_responses
    ):
        """Every golden body (captured with the PR 5 server code before
        this table existed) matches the pre-serialized bytes exactly."""
        checked = 0
        for key_str, golden_body in golden_responses.items():
            chip, app, inp = json.loads(key_str)
            pre = index.answer((chip, app, inp))
            if pre is not None:
                body, _ = pre
                assert body.decode("utf-8") == golden_body, (chip, app, inp)
                checked += 1
            else:
                # Unknown coordinates are outside the table by design;
                # the encode-on-miss path must still match the golden.
                body, _ = render_answer(index, chip=chip, app=app, input=inp)
                assert body.decode("utf-8") == golden_body, (chip, app, inp)
        assert checked == index.n_answers  # goldens cover the whole table

    def test_degraded_variants_are_precompiled(self, golden_dataset):
        """A holed dataset's fallback answers are in the table too."""
        holed = golden_dataset.subset(
            [
                t
                for t in golden_dataset.tests
                if not (t.chip == "MALI" and t.app == "bfs-wl")
            ]
        )
        index = build_index(holed)
        pre = index.answer(("MALI", "bfs-wl", "tiny-road"))
        assert pre is not None
        body, degraded = pre
        assert degraded
        payload = json.loads(body)
        assert payload["degraded"]
        assert "fell back" in payload["note"]


class TestArtifactRoundtrip:
    def test_answers_survive_save_load_byte_identical(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        loaded = StrategyIndex.load(path)
        assert loaded.n_answers == index.n_answers
        assert loaded.answers == index.answers

    def test_tampered_answers_fail_the_checksum(self, index, tmp_path):
        path = str(tmp_path / "index.json")
        index.save(path)
        with open(path) as f:
            payload = json.load(f)
        key = next(iter(payload["index"]["answers"]))
        payload["index"]["answers"][key][0] = '{"config": "evil"}'
        with open(path, "w") as f:
            json.dump(payload, f)
        with pytest.raises(StrategyIndexError, match="checksum mismatch"):
            StrategyIndex.load(path)

    def test_malformed_answers_table_rejected(self, index):
        data = index.to_dict()
        data["answers"] = {"not-json-coords": "not-a-pair"}
        with pytest.raises(StrategyIndexError, match="malformed"):
            StrategyIndex.from_dict(data)


class TestBackwardCompat:
    """A ``strategy-index-v1`` artifact without the table still serves."""

    def test_pr5_golden_artifact_loads_without_answers(self, goldens_dir):
        legacy = StrategyIndex.load(os.path.join(goldens_dir, GOLDEN_PR5_INDEX))
        assert legacy.n_answers == 0
        assert legacy.n_entries == 49
        answer = legacy.lookup(chip="MALI", app="bfs-wl", input="tiny-road")
        assert not answer.degraded

    def test_pr5_artifact_serves_via_encode_on_miss(
        self, goldens_dir, golden_responses
    ):
        legacy = StrategyIndex.load(os.path.join(goldens_dir, GOLDEN_PR5_INDEX))

        async def go():
            server = StrategyServer(legacy, recorder=Recorder())
            await server.start()
            try:
                s1, b1 = await http_get(
                    server.port,
                    "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road",
                )
                s2, b2 = await http_get(
                    server.port,
                    "/v1/strategy?chip=MALI&app=bfs-wl&input=tiny-road",
                )
                counters = dict(server.recorder.counters)
            finally:
                await server.stop()
            return s1, b1, s2, b2, counters

        s1, b1, s2, b2, counters = run(go())
        assert s1 == s2 == 200
        assert b1 == b2
        golden = golden_responses[json.dumps(["MALI", "bfs-wl", "tiny-road"])]
        assert b1.decode("utf-8") == golden
        # No table: the TTL cache carries the load instead.
        assert "serve.answers.precompiled" not in counters
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.cache.hits"] == 1

    def test_pr5_artifact_roundtrips_byte_identical(
        self, goldens_dir, tmp_path
    ):
        """Loading and re-saving the pre-answers, pre-portfolios golden
        must not churn a byte (or its checksum): optional sections an
        artifact never had stay omitted from the re-serialization."""
        source = os.path.join(goldens_dir, GOLDEN_PR5_INDEX)
        legacy = StrategyIndex.load(source)
        assert legacy.portfolios is None
        resaved = str(tmp_path / "resaved.json")
        legacy.save(resaved)
        with open(source, "rb") as f1, open(resaved, "rb") as f2:
            assert f1.read() == f2.read()

    def test_pr5_artifact_has_no_portfolio_table(self, goldens_dir):
        from repro.errors import StrategyIndexError as SIE

        legacy = StrategyIndex.load(os.path.join(goldens_dir, GOLDEN_PR5_INDEX))
        with pytest.raises(SIE, match="repro index --portfolios"):
            legacy.lookup_portfolio(chip="MALI")
