"""Fault injection (repro.faults) and the sweep's recovery paths.

Every fault class the :class:`~repro.faults.FaultPlan` can inject —
worker crash, worker exception, straggler, parent interrupt, corrupted
write — has a test here (or in ``test_study_checkpoint.py`` /
``test_study_dataset.py``) driving the corresponding recovery or
rejection path, per the issue's acceptance criteria.
"""

import os

import pytest

from repro.apps import get_application
from repro.chips import get_chip
from repro.compiler import enumerate_configs
from repro.errors import InjectedFault
from repro.faults import FAULT_KINDS, FaultPlan
from repro.graphs import rmat_graph
from repro.graphs.inputs import StudyInput
from repro.study import StudyConfig, run_study


@pytest.fixture(scope="module")
def tiny_config() -> StudyConfig:
    """1 app x 1 input x 2 chips x 4 configurations: 8 shards."""
    graph = rmat_graph(6, edge_factor=6, seed=3, name="f-rmat")
    return StudyConfig(
        apps=[get_application("bfs-wl")],
        inputs={
            "f-rmat": StudyInput(
                name="f-rmat",
                input_class="social",
                description="fault test rmat",
                _builder=lambda: graph,
            )
        },
        chips=[get_chip("GTX1080"), get_chip("MALI")],
        configs=enumerate_configs()[::24],
    )


@pytest.fixture(scope="module")
def baseline(tiny_config):
    return run_study(tiny_config, jobs=1)


class TestFaultPlanTokens:
    def test_unarmed_fire_is_noop(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        assert plan.fire("error", "anywhere") is False

    def test_tokens_consumed_exactly_once(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "here", count=2, param=0.0)
        assert plan.fire("slow", "here") is True
        assert plan.fire("slow", "here") is True
        assert plan.fire("slow", "here") is False

    def test_arm_accumulates(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "k")
        plan.arm("slow", "k")
        assert plan.armed() == [("slow", "k"), ("slow", "k")]

    def test_keys_are_isolated(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("error", "shard-0-1")
        assert plan.fire("error", "shard-0-10") is False
        with pytest.raises(InjectedFault):
            plan.fire("error", "shard-0-1")

    def test_error_raises_injected_fault(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("error", "k")
        with pytest.raises(InjectedFault, match="injected error at k"):
            plan.fire("error", "k")

    def test_interrupt_raises_keyboard_interrupt(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("interrupt", "k")
        with pytest.raises(KeyboardInterrupt):
            plan.fire("interrupt", "k")

    def test_unknown_kind_rejected(self, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        with pytest.raises(ValueError):
            plan.arm("meteor", "k")
        with pytest.raises(ValueError):
            plan.arm("error", "k", count=0)

    def test_plan_survives_pickling(self, tmp_path):
        import pickle

        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "k")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fire("slow", "k") is True
        assert plan.fire("slow", "k") is False  # same spool, shared tokens

    def test_seeded_plan_is_deterministic(self, tmp_path):
        keys = [f"shard-0-{i}" for i in range(50)]
        a = FaultPlan.seeded(str(tmp_path / "a"), 42, keys, rate=0.2)
        b = FaultPlan.seeded(str(tmp_path / "b"), 42, keys, rate=0.2)
        c = FaultPlan.seeded(str(tmp_path / "c"), 43, keys, rate=0.2)
        assert a.armed() == b.armed()
        assert 0 < len(a.armed()) < len(keys)
        assert a.armed() != c.armed()

    def test_kind_vocabulary(self):
        assert set(FAULT_KINDS) == {
            "crash",
            "error",
            "interrupt",
            "slow",
            "corrupt",
        }


class TestRecoveryPaths:
    """Injected faults in a parallel sweep must not change the dataset."""

    def test_worker_crash_requeues_shard(self, tiny_config, baseline, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("crash", "shard-1-2")
        messages = []
        dataset = run_study(
            tiny_config,
            progress=messages.append,
            jobs=2,
            faults=plan,
            backoff=0.01,
        )
        assert dataset == baseline
        assert any("pool died" in m and "re-queuing" in m for m in messages)
        assert plan.armed() == []  # the crash actually fired

    def test_worker_error_requeues_shard(self, tiny_config, baseline, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("error", "shard-0-1")
        messages = []
        dataset = run_study(
            tiny_config,
            progress=messages.append,
            jobs=2,
            faults=plan,
            backoff=0.01,
        )
        assert dataset == baseline
        assert any("re-queued (retry 1/" in m for m in messages)

    def test_repeated_pool_death_falls_back_in_process(
        self, tiny_config, baseline, tmp_path
    ):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("crash", "shard-0-0", count=5)
        messages = []
        dataset = run_study(
            tiny_config,
            progress=messages.append,
            jobs=2,
            faults=plan,
            retries=1,
            backoff=0.01,
        )
        assert dataset == baseline
        assert any("in-process" in m for m in messages)

    def test_repeated_shard_error_falls_back_in_process(
        self, tiny_config, baseline, tmp_path
    ):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("error", "shard-0-1", count=5)
        messages = []
        dataset = run_study(
            tiny_config,
            progress=messages.append,
            jobs=2,
            faults=plan,
            retries=1,
            backoff=0.01,
        )
        assert dataset == baseline
        assert any("failed 2 times" in m and "in-process" in m for m in messages)

    def test_slow_shard_changes_nothing(self, tiny_config, baseline, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("slow", "shard-0-0", param=0.05)
        dataset = run_study(tiny_config, jobs=2, faults=plan, backoff=0.01)
        assert dataset == baseline
        assert plan.armed() == []

    def test_negative_retries_rejected(self, tiny_config):
        with pytest.raises(ValueError):
            run_study(tiny_config, jobs=2, retries=-1)

    def test_serial_sweep_fires_faults_too(self, tiny_config, tmp_path):
        plan = FaultPlan(str(tmp_path / "spool"))
        plan.arm("error", "shard-0-0")
        with pytest.raises(InjectedFault):
            run_study(tiny_config, jobs=1, faults=plan)
