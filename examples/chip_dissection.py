#!/usr/bin/env python3
"""Scenario: dissect why chips want different optimisations (Section VIII).

Reproduces the paper's explanatory chain for three per-chip findings:

1. Nvidia chips disable ``oitergb``  — launch-overhead microbenchmark;
2. only R9 and IRIS enable ``coop-cv`` — subgroup atomic-combining
   microbenchmark (JIT combining on Nvidia/HD5500, trivial subgroups
   on MALI);
3. MALI enables ``sg`` despite subgroup size 1 — the memory-divergence
   microbenchmark shows its gratuitous barriers pay for themselves.

Run:  python examples/chip_dissection.py
"""

from repro.chips import all_chips
from repro.core.reporting import render_table
from repro.microbench import launch_overhead_sweep, m_divg_table, sg_cmb_table


def main() -> None:
    chips = [c.short_name for c in all_chips()]

    # 1. Kernel-launch overhead (Fig 5's 10us column).
    sweep = launch_overhead_sweep(noisy=False)
    rows = [
        [
            chip,
            f"{next(c for c in all_chips() if c.short_name == chip).launch_overhead_us:.0f}us",
            f"{sweep[chip][3].utilisation * 100:.0f}%",
            "no (cheap launches)" if chip in ("M4000", "GTX1080") else "yes",
        ]
        for chip in chips
    ]
    print(
        render_table(
            ["Chip", "Launch latency", "Utilisation @10us kernels", "Needs oitergb?"],
            rows,
            title="1. Why Nvidia does not need iteration outlining (Fig 5)",
        )
    )

    # 2. Subgroup atomic combining (Table X, sg-cmb).
    sg = sg_cmb_table()
    reasons = {
        "M4000": "JIT already combines",
        "GTX1080": "JIT already combines",
        "HD5500": "JIT already combines",
        "IRIS": "software combining pays",
        "R9": "software combining pays (sg=64)",
        "MALI": "subgroup size 1: nothing to combine",
    }
    rows = [
        [chip, f"{sg[chip].speedup:.2f}x", reasons[chip]] for chip in chips
    ]
    print()
    print(
        render_table(
            ["Chip", "sg-cmb speedup", "Interpretation"],
            rows,
            title="2. Why only R9 and IRIS enable coop-cv (Table X)",
        )
    )

    # 3. Memory divergence (Table X, m-divg).
    md = m_divg_table()
    rows = [[chip, f"{md[chip].speedup:.2f}x"] for chip in chips]
    print()
    print(
        render_table(
            ["Chip", "m-divg speedup"],
            rows,
            title=(
                "3. Why MALI enables sg despite trivial subgroups: a "
                "gratuitous barrier fixes its memory divergence"
            ),
        )
    )
    print(
        "\nMALI's outlier sensitivity suggests the paper's closing "
        "observation: a dedicated anti-divergence optimisation may be "
        "needed for mobile GPUs."
    )


if __name__ == "__main__":
    main()
