#!/usr/bin/env python3
"""Scenario: bring your own graph algorithm into the framework.

Implements k-core decomposition — an application *not* in the paper's
suite — against the public Application protocol: a DSL program for the
compiler, vectorised step functions for the executor, and an
independent oracle.  The new application immediately gets everything
the framework offers: functional validation, trace collection,
compilation under all 96 configurations, and per-chip pricing.

Run:  python examples/custom_application.py
"""

from typing import Dict

import numpy as np

from repro import BASELINE, OptConfig, compile_program, get_chip
from repro.apps.base import Application
from repro.dsl import fixpoint_program, relax_kernel
from repro.graphs import CSRGraph, rmat_graph
from repro.ocl import AtomicOp
from repro.perfmodel import estimate_runtime_us
from repro.runtime import Worklist, frontier_step_result
from repro.runtime.stats import StepResult


class KCore(Application):
    """Iterative k-core peeling: repeatedly remove nodes of degree < k."""

    name = "kcore-wl"
    problem = "KCORE"
    variant = "worklist"
    description = "Worklist peeling to the k-core of the undirected graph"

    def __init__(self, k: int = 3) -> None:
        super().__init__()
        self.k = k

    def _build_program(self):
        return fixpoint_program(
            self.name,
            [relax_kernel("peel", "degree", AtomicOp.ADD)],
            convergence="worklist-empty",
            description=self.description,
        )

    def init_state(self, graph: CSRGraph, source: int) -> Dict:
        und = graph.symmetrized()
        degree = und.out_degrees().copy()
        doomed = np.flatnonzero((degree > 0) & (degree < self.k))
        return {
            "und": und,
            "degree": degree,
            "alive": np.ones(graph.n_nodes, dtype=bool),
            "worklist": Worklist(doomed.astype(np.int64)),
        }

    def kernel_step(self, kernel: str, state: Dict, graph: CSRGraph) -> StepResult:
        if kernel != "peel":
            raise self._unknown_kernel(kernel)
        und: CSRGraph = state["und"]
        wl: Worklist = state["worklist"]
        frontier = wl.items()
        frontier = frontier[state["alive"][frontier]]
        state["alive"][frontier] = False
        if frontier.size:
            from repro.apps.base import expand_frontier

            _, dsts, _ = expand_frontier(und, frontier)
            np.subtract.at(state["degree"], dsts, 1)
            alive_dsts = dsts[state["alive"][dsts]]
            newly_doomed = np.unique(
                alive_dsts[state["degree"][alive_dsts] < self.k]
            )
        else:
            dsts = np.empty(0, dtype=np.int64)
            newly_doomed = np.empty(0, dtype=np.int64)
        wl.push(newly_doomed)
        pushes = wl.swap()
        return frontier_step_result(
            und,
            frontier,
            destinations=dsts,
            pushes=pushes,
            uncontended_rmws=int(dsts.size),
            more_work=not wl.is_empty,
        )

    def extract_result(self, state: Dict, graph: CSRGraph) -> np.ndarray:
        # A node is in the k-core iff it survived peeling with degree >= k.
        return (state["alive"] & (state["degree"] >= self.k)).astype(np.int64)

    def reference(self, graph: CSRGraph, source: int) -> np.ndarray:
        """Sequential peeling oracle."""
        und = graph.symmetrized()
        degree = und.out_degrees().copy()
        alive = np.ones(graph.n_nodes, dtype=bool)
        changed = True
        while changed:
            changed = False
            for v in range(graph.n_nodes):
                if alive[v] and 0 < degree[v] < self.k:
                    alive[v] = False
                    for u in und.neighbors(v):
                        degree[u] -= 1
                    changed = True
        return (alive & (degree >= self.k)).astype(np.int64)


def main() -> None:
    graph = rmat_graph(10, edge_factor=6, seed=11, name="demo-rmat")
    app = KCore(k=4)

    print(f"custom application: {app.name} (k={app.k}) on {graph}")
    print(f"oracle-correct: {app.validate(graph)}")

    result = app.run(graph)
    core_size = int(app.extract_result(result.state, graph).sum())
    print(
        f"4-core: {core_size}/{graph.n_nodes} nodes; peeled in "
        f"{result.trace.n_fixpoint_iterations} rounds\n"
    )

    print("pricing the new app across the study chips (baseline vs portable pick):")
    portable = OptConfig.from_names({"sg", "fg8", "oitergb"})
    for chip_name in ("GTX1080", "IRIS", "R9", "MALI"):
        chip = get_chip(chip_name)
        t_base = estimate_runtime_us(
            compile_program(app.program(), chip, BASELINE), result.trace
        )
        t_opt = estimate_runtime_us(
            compile_program(app.program(), chip, portable), result.trace
        )
        print(
            f"  {chip_name:8s} baseline {t_base/1000:6.2f}ms -> "
            f"portable {t_opt/1000:6.2f}ms ({t_base/t_opt:.2f}x)"
        )


if __name__ == "__main__":
    main()
