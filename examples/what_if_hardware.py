#!/usr/bin/env python3
"""Scenario: architectural what-if studies with the chip models.

The paper infers hardware characteristics *from* optimisation
decisions (Section VIII).  With a parameterised chip model the
inference runs the other way too: edit one architectural parameter and
watch the recommended optimisations flip.  Two what-ifs:

1. Give MALI a divergence-tolerant memory system — does its analysis
   still demand ``sg`` (whose only MALI benefit is divergence relief)?
2. Strip GTX1080's JIT atomic combining — does ``coop-cv`` become
   worthwhile on an Nvidia chip?

Run:  python examples/what_if_hardware.py        (~1-2 minutes)

Set ``REPRO_EXAMPLE_SCALE`` (default 0.5) to shrink the inputs — CI
runs every example at 0.1 as a smoke test.
"""

import os

from repro import StudyConfig, run_study
from repro.apps import get_application
from repro.chips import get_chip
from repro.core import Analysis


APPS = ("bfs-wl", "sssp-nf", "pr-wl", "cc-wl")


def chip_decisions(chip, opts=("coop-cv", "sg", "fg", "fg8", "oitergb")):
    """Run a reduced study on one chip and return its Table IX row."""
    config = StudyConfig(
        apps=[get_application(a) for a in APPS],
        chips=[chip],
        scale=float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.5")),
    )
    dataset = run_study(config, progress=lambda m: None)
    analysis = Analysis(dataset)
    decisions = analysis.opts_for_partition(dataset.tests)
    return {opt: decisions[opt] for opt in opts}


def show(title, decisions):
    print(title)
    for opt, d in decisions.items():
        print(f"  {opt:8s} {d.mark()}  (CL {d.effect_size:.2f})")
    print()


def main() -> None:
    # -- what-if 1: a divergence-tolerant MALI -------------------------
    mali = get_chip("MALI")
    show("MALI as shipped:", chip_decisions(mali))

    tolerant = mali.with_overrides(divergence_sensitivity=0.05)
    show(
        "MALI with a divergence-tolerant memory system "
        "(sensitivity 15.0 -> 0.05):",
        chip_decisions(tolerant),
    )
    print(
        "-> on the tolerant MALI, sg's effect collapses: with a "
        "subgroup size of 1 its only benefit was divergence relief — "
        "the paper's Section VIII-c claim, inverted into a "
        "prediction.\n"
    )

    # -- what-if 2: GTX1080 without JIT atomic combining ----------------
    gtx = get_chip("GTX1080")
    show("GTX1080 as shipped (JIT combines subgroup atomics):", chip_decisions(gtx))

    no_jit = gtx.with_overrides(jit_coop_cv=False, atomic_rmw_ns=6.0)
    show(
        "GTX1080 without JIT combining (and R9-class atomic latency):",
        chip_decisions(no_jit),
    )
    print(
        "-> coop-cv becomes profitable the moment the runtime stops "
        "combining for you — Section VIII-b's explanation, run forward."
    )


if __name__ == "__main__":
    main()
