#!/usr/bin/env python3
"""Quickstart: run one graph application through the full stack.

Builds a road-network input, runs worklist BFS functionally (real
results, validated against the CPU oracle), compiles it for two very
different GPUs under a few optimisation configurations, and prices
each (chip, configuration) with the performance model — the per-test
slice of what the full study does 29 376 times.

Run:  python examples/quickstart.py
"""

from repro import BASELINE, OptConfig, compile_program, get_application, get_chip
from repro.graphs import analyze, road_network
from repro.perfmodel import estimate_runtime_us, measure_repeats_us


def main() -> None:
    # 1. An input graph: a synthetic road network (high diameter, low
    #    degree — the class where iteration outlining shines).
    graph = road_network(60, 60, seed=7, name="demo-road")
    props = analyze(graph)
    print(f"input: {graph}")
    print(
        f"  class={props.classify()}  diameter~{props.est_diameter}  "
        f"avg degree={props.avg_degree:.1f}\n"
    )

    # 2. An application: worklist BFS, executed functionally.
    app = get_application("bfs-wl")
    result = app.run(graph, source=0)
    levels = app.extract_result(result.state, graph)
    print(f"application: {app.name} — {app.description}")
    print(
        f"  reached {int((levels >= 0).sum())}/{graph.n_nodes} nodes in "
        f"{result.trace.n_fixpoint_iterations} iterations "
        f"({result.trace.n_launches} kernel launches, "
        f"{result.trace.total_pushes} worklist pushes)"
    )
    print(f"  oracle-correct: {app.validate(graph, source=0)}\n")

    # 3. Compile + price on two chips under a few configurations.
    configs = [
        BASELINE,
        OptConfig.from_names({"fg8", "sg"}),
        OptConfig.from_names({"oitergb"}),
        OptConfig.from_names({"sg", "fg8", "oitergb"}),  # the portable pick
    ]
    print(f"{'config':28s}" + "".join(f"{c:>14s}" for c in ("GTX1080", "MALI")))
    estimates = {}
    for config in configs:
        row = f"{config.label():28s}"
        for chip_name in ("GTX1080", "MALI"):
            chip = get_chip(chip_name)
            plan = compile_program(app.program(), chip, config)
            us = estimate_runtime_us(plan, result.trace)
            estimates[(chip_name, config.key())] = us
            row += f"{us / 1000.0:>12.2f}ms"
        print(row)

    # 4. The study's noisy repeated timings for one point.  The noise
    #    model wraps the noise-free estimate, so the estimate priced for
    #    the table above is passed in rather than re-priced.
    chip = get_chip("MALI")
    plan = compile_program(app.program(), chip, configs[-1])
    reps = measure_repeats_us(
        plan, result.trace, true_us=estimates[("MALI", configs[-1].key())]
    )
    print(
        "\nthree simulated timing repetitions on MALI "
        f"[{configs[-1].label()}]: "
        + ", ".join(f"{t / 1000.0:.2f}ms" for t in reps)
    )
    print(
        "\nNote how oitergb transforms MALI (launch-bound) but not "
        "GTX1080 — the per-chip divergence the paper's analysis "
        "formalises."
    )


if __name__ == "__main__":
    main()
