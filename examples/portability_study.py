#!/usr/bin/env python3
"""Scenario: quantify portability vs specialisation on a custom study.

A compiler engineer wants to know how much performance a *single*
shipped optimisation configuration leaves on the table versus
per-chip tuning, for their workload mix.  This example runs a reduced
study (5 applications × 2 inputs × 4 chips × all 96 configurations),
derives every Table V strategy with the paper's rank-based analysis,
and prints the Fig 3 / Fig 4 trade-off plus each strategy's actual
configuration choices.

Run:  python examples/portability_study.py      (~1 minute)

Set ``REPRO_EXAMPLE_SCALE`` (default 0.5) to shrink the inputs — CI
runs every example at 0.1 as a smoke test.
"""

import os

from repro import StudyConfig, run_study
from repro.apps import get_application
from repro.chips import get_chip
from repro.core import Analysis, build_strategies, evaluate_strategies
from repro.core.reporting import render_table
from repro.core.strategies import STRATEGY_ORDER
from repro.graphs import study_inputs


SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.5"))


def main() -> None:
    config = StudyConfig(
        apps=[
            get_application(name)
            for name in ("bfs-hybrid", "sssp-nf", "pr-wl", "cc-wl", "tri-hybrid")
        ],
        inputs={
            k: v
            for k, v in study_inputs(scale=SCALE).items()
            if k in ("usa-ny-sim", "rmat-sim")
        },
        chips=[get_chip(n) for n in ("GTX1080", "IRIS", "R9", "MALI")],
    )
    print("running reduced study (5 apps x 2 inputs x 4 chips x 96 configs)...")
    dataset = run_study(config, progress=lambda m: None)
    print(f"collected {dataset.n_measurements} measurements\n")

    analysis = Analysis(dataset)
    strategies = build_strategies(dataset, analysis)
    summary = evaluate_strategies(dataset, strategies)

    rows = []
    for name in STRATEGY_ORDER:
        s = summary[name]
        n_cfg = len(strategies[name].distinct_configs)
        rows.append(
            [
                name,
                n_cfg,
                f"{s['pct_speedup']:.0f}%",
                f"{s['pct_slowdown']:.0f}%",
                f"{s['slowdown_vs_oracle']:.2f}x",
            ]
        )
    print(
        render_table(
            ["Strategy", "#Configs", "Speedups", "Slowdowns", "vs oracle"],
            rows,
            title="Portability vs specialisation (Figs 3+4 for this workload)",
        )
    )

    print("\nWhat each strategy actually ships:")
    print(f"  global       : {strategies['global'].distinct_configs[0].label()}")
    for (chip,), cfg in sorted(strategies["chip"].assignment.items()):
        print(f"  chip[{chip:8s}]: {cfg.label()}")

    glob = summary["global"]["slowdown_vs_oracle"]
    chip = summary["chip"]["slowdown_vs_oracle"]
    print(
        f"\nVerdict: a single portable configuration trails per-test "
        f"tuning by {glob:.2f}x geomean; knowing only the chip closes "
        f"that to {chip:.2f}x."
    )


if __name__ == "__main__":
    main()
